"""Engine telemetry: the two-plane recorder and its engine threading.

The deterministic plane must be a pure function of the scenario set —
invariant across ``--jobs``, spec order, and lane compaction — while the
journal/summary bytes stay untouched whether metrics are on or off.
Both contracts are pinned here, alongside the recorder's merge algebra
(commutative, associative) that makes worker-snapshot merging
independent of completion order.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.backends import execute_scenario_batch
from repro.engine.campaign import Campaign
from repro.engine.registry import family_campaign
from repro.engine.scenarios import termination_grid
from repro.engine.telemetry import (
    NULL,
    NullRecorder,
    Recorder,
    SIDECAR_SCHEMA,
    read_sidecar,
    render_sidecar,
    validate_sidecar,
)


# ----------------------------------------------------------------------
# Recorder unit behavior
# ----------------------------------------------------------------------
class TestRecorder:
    def test_counters_and_gauges(self):
        rec = Recorder()
        rec.inc("a")
        rec.inc("a", 4)
        rec.vinc("b", 2)
        rec.gauge_max("g", 3.0)
        rec.gauge_max("g", 1.0)
        snap = rec.snapshot()
        assert snap["deterministic"]["counters"] == {"a": 5}
        assert snap["volatile"]["counters"] == {"b": 2}
        assert snap["deterministic"]["gauges"] == {"g": 3.0}
        assert rec.counter("a") == 5
        assert rec.counter("b") == 2
        assert rec.counter("missing") == 0

    def test_histogram_buckets_and_stats(self):
        rec = Recorder()
        for v in (1, 2, 3, 5000):
            rec.observe("h", v)
        h = rec.snapshot()["deterministic"]["histograms"]["h"]
        assert h["count"] == 4
        assert h["sum"] == 5006
        assert h["min"] == 1 and h["max"] == 5000
        assert sum(h["counts"]) == 4
        assert len(h["counts"]) == len(h["edges"]) + 1
        assert h["counts"][-1] == 1  # 5000 lands in the overflow bucket

    def test_span_records_duration(self):
        rec = Recorder()
        with rec.span("work"):
            pass
        dur = rec.snapshot()["volatile"]["durations"]["work"]
        assert dur["count"] == 1
        assert dur["total_s"] >= 0.0
        assert dur["max_s"] >= 0.0

    def test_merge_is_order_independent(self):
        def make(seed):
            rec = Recorder()
            rec.inc("c", seed)
            rec.vinc("vc", seed * 2)
            rec.gauge_max("g", float(seed))
            rec.observe("h", seed)
            rec.add_duration("d", seed * 0.5)
            return rec.snapshot()

        snaps = [make(s) for s in (1, 2, 3)]
        merged = []
        for order in ((0, 1, 2), (2, 0, 1), (1, 2, 0)):
            rec = Recorder()
            for i in order:
                rec.merge(snaps[i])
            merged.append(rec.snapshot())
        assert merged[0] == merged[1] == merged[2]
        assert merged[0]["deterministic"]["counters"]["c"] == 6
        assert merged[0]["deterministic"]["gauges"]["g"] == 3.0
        assert merged[0]["volatile"]["durations"]["d"]["count"] == 3

    def test_merge_empty_snapshot_is_noop(self):
        rec = Recorder()
        rec.inc("a")
        rec.merge({})
        assert rec.snapshot()["deterministic"]["counters"] == {"a": 1}

    def test_histogram_edge_mismatch_rejected(self):
        a, b = Recorder(), Recorder()
        a.observe("h", 1)
        b.observe("h", 1, edges=(10, 20))
        with pytest.raises(ValueError, match="different edges"):
            a.merge(b.snapshot())

    def test_conflicting_info_key_rejected(self):
        a, b = Recorder(), Recorder()
        a.set_info("k", 1)
        b.set_info("k", 2)
        with pytest.raises(ValueError, match="conflicting info"):
            a.merge(b.snapshot())

    def test_null_recorder_is_falsy_noop(self):
        assert not NULL
        assert isinstance(NULL, NullRecorder)
        NULL.inc("a")
        NULL.vinc("a")
        NULL.observe("h", 1)
        NULL.add_duration("d", 1.0)
        with NULL.span("s"):
            pass
        assert NULL.snapshot() == {}
        assert NULL.counter("a") == 0

    def test_real_recorder_is_truthy(self):
        assert Recorder()


# ----------------------------------------------------------------------
# Sidecar format
# ----------------------------------------------------------------------
class TestSidecar:
    def test_write_read_roundtrip(self, tmp_path):
        rec = Recorder()
        rec.inc("kernel.lanes", 3)
        rec.vobserve("v", 2)
        path = tmp_path / "m.json"
        rec.write_sidecar(path, label="unit")
        data = read_sidecar(path)
        assert data["schema"] == SIDECAR_SCHEMA
        assert data["label"] == "unit"
        assert data["deterministic"]["counters"]["kernel.lanes"] == 3

    def test_validate_rejects_bad_schema(self):
        rec = Recorder()
        side = rec.to_sidecar()
        side["schema"] = SIDECAR_SCHEMA + 1
        with pytest.raises(ValueError, match="newer than supported"):
            validate_sidecar(side)
        side["schema"] = "x"
        with pytest.raises(ValueError, match="bad sidecar schema"):
            validate_sidecar(side)

    def test_validate_rejects_corrupt_histogram(self):
        rec = Recorder()
        rec.observe("h", 1)
        side = rec.to_sidecar()
        side["deterministic"]["histograms"]["h"]["counts"][0] += 1
        with pytest.raises(ValueError, match="bucket/count mismatch"):
            validate_sidecar(side)

    def test_validate_rejects_missing_plane(self):
        with pytest.raises(ValueError, match="counters"):
            validate_sidecar({"schema": 1, "deterministic": {}})

    def test_render_lists_every_metric(self):
        rec = Recorder()
        rec.inc("kernel.lanes", 7)
        rec.vgauge_max("executor.pool_workers", 2)
        rec.add_duration("campaign.run_s", 0.5)
        text = render_sidecar(rec.to_sidecar(label="demo"))
        assert "schema 1" in text and "label demo" in text
        assert "kernel.lanes" in text
        assert "executor.pool_workers" in text
        assert "campaign.run_s" in text


# ----------------------------------------------------------------------
# Engine threading: determinism and journal purity
# ----------------------------------------------------------------------
def _latency_campaign(store, jobs=1, recorder=None, backend=None):
    campaign = family_campaign(
        "latency",
        {"n": [5, 6], "seeds": 2, "noise": [0.1]},
        store=store,
        jobs=jobs,
        backend=backend,
    )
    campaign.run(recorder=recorder)
    return campaign


class TestDeterministicPlane:
    def test_invariant_across_jobs(self, tmp_path):
        """The det plane is a pure function of the scenario set: jobs=1,
        2 and 4 must produce identical deterministic sections (and
        line-identical journals)."""
        planes, journals = {}, {}
        for jobs in (1, 2, 4):
            store = tmp_path / f"j{jobs}.jsonl"
            rec = Recorder()
            _latency_campaign(str(store), jobs=jobs, recorder=rec)
            planes[jobs] = rec.snapshot()["deterministic"]
            journals[jobs] = sorted(store.read_text().splitlines())
        assert planes[1] == planes[2] == planes[4]
        assert journals[1] == journals[2] == journals[4]
        # And the plane actually measured something at every layer.
        counters = planes[1]["counters"]
        for prefix in ("scheduler.", "executor.", "kernel.", "store."):
            assert any(
                name.startswith(prefix) and value > 0
                for name, value in counters.items()
            ), f"no non-zero {prefix} counters: {counters}"

    def test_invariant_across_spec_shuffle(self):
        """Kernel det counters are per-lane pure: batching the same specs
        in a different order changes nothing on the det plane."""
        specs = termination_grid(ns=[5], seeds=range(4), noise=0.2)
        forward, backward = Recorder(), Recorder()
        execute_scenario_batch(specs, recorder=forward)
        execute_scenario_batch(list(reversed(specs)), recorder=backward)
        fwd = forward.snapshot()["deterministic"]
        bwd = backward.snapshot()["deterministic"]
        assert fwd == bwd

    def test_invariant_across_compaction(self):
        """Lane compaction is an execution-shape knob: the det plane must
        not see it (the volatile plane may)."""
        specs = termination_grid(ns=[6], seeds=range(5), noise=0.2)
        on, off = Recorder(), Recorder()
        execute_scenario_batch(specs, width=2, compact=True, recorder=on)
        execute_scenario_batch(specs, width=2, compact=False, recorder=off)
        assert (
            on.snapshot()["deterministic"] == off.snapshot()["deterministic"]
        )

    def test_journal_bytes_identical_metrics_on_off(self, tmp_path):
        """--metrics must never leak into the journal: bytes are
        identical with the recorder on or off."""
        with_metrics = tmp_path / "on.jsonl"
        without = tmp_path / "off.jsonl"
        _latency_campaign(str(with_metrics), recorder=Recorder())
        _latency_campaign(str(without), recorder=None)
        assert with_metrics.read_bytes() == without.read_bytes()

    def test_resume_hits_counted(self, tmp_path):
        store = tmp_path / "j.jsonl"
        first = _latency_campaign(str(store))
        rec = Recorder()
        _latency_campaign(str(store), recorder=rec)  # resumes: all skipped
        det = rec.snapshot()["deterministic"]["counters"]
        assert det["store.resume_hits"] == len(first.specs) > 0
        assert det.get("store.appends", 0) == 0

    def test_worker_profiles_merged_under_pool(self, tmp_path):
        """Pool workers return snapshots; the parent merge must surface
        per-worker info and utilization."""
        rec = Recorder()
        _latency_campaign(
            str(tmp_path / "j.jsonl"), jobs=2, recorder=rec
        )
        vol = rec.snapshot()["volatile"]
        workers = vol["info"]["executor.workers"]
        assert workers and all(
            {"pid", "units", "busy_s"} <= set(w) for w in workers
        )
        assert vol["gauges"]["executor.pool_workers"] == 2
        assert "executor.unit_wall_s" in vol["durations"]


class TestCampaignStatusTiming:
    def test_status_reports_elapsed_and_rate(self, tmp_path):
        store = tmp_path / "j.jsonl"
        campaign = _latency_campaign(str(store))
        status = campaign.status()
        assert status.elapsed_s is not None and status.elapsed_s > 0
        assert status.rate is not None and status.rate > 0
        text = status.summary()
        assert "elapsed (journal)" in text
        assert "scenarios/s" in text

    def test_status_without_times_sidecar(self, tmp_path):
        """Journals predating the .times sidecar still report status —
        the timing rows just stay absent."""
        store = tmp_path / "j.jsonl"
        campaign = _latency_campaign(str(store))
        (tmp_path / "j.jsonl.times").unlink()
        campaign.refresh()
        status = campaign.status()
        assert status.elapsed_s is None and status.rate is None
        assert "elapsed" not in status.summary()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliMetrics:
    FAMILY = ["--family", "latency", "-n", "5", "6", "--seeds", "2",
              "--noise", "0.1"]

    def test_run_writes_sidecar_and_report_renders_it(
        self, capsys, tmp_path
    ):
        from repro.cli import main

        store = str(tmp_path / "j.jsonl")
        code = main(
            ["campaign", "run", "--store", store, "--metrics",
             "--no-progress"] + self.FAMILY
        )
        assert code == 0
        sidecar = store + ".metrics.json"
        data = read_sidecar(sidecar)  # validates structure
        assert data["label"] == "latency"
        err = capsys.readouterr().err
        assert sidecar in err

        assert main(
            ["campaign", "report", "--store", store, "--metrics"]
            + self.FAMILY
        ) == 0
        out = capsys.readouterr().out
        assert "kernel.lanes" in out
        assert "store.appends" in out

    def test_run_metrics_explicit_path(self, capsys, tmp_path):
        from repro.cli import main

        store = str(tmp_path / "j.jsonl")
        target = str(tmp_path / "custom" / "metrics.json")
        code = main(
            ["campaign", "run", "--store", store, "--metrics", target,
             "--no-progress"] + self.FAMILY
        )
        assert code == 0
        assert json.loads(
            (tmp_path / "custom" / "metrics.json").read_text()
        )["schema"] == SIDECAR_SCHEMA

    def test_family_sugar_metrics_requires_store(self, capsys):
        from repro.cli import main

        code = main(
            ["sweep", "-n", "5", "-k", "2", "--seeds", "1", "--metrics",
             "--no-progress"]
        )
        assert code == 2
        assert "--store" in capsys.readouterr().out

    def test_report_missing_sidecar_fails(self, capsys, tmp_path):
        from repro.cli import main

        store = str(tmp_path / "j.jsonl")
        code = main(
            ["campaign", "report", "--store", store, "--metrics"]
            + self.FAMILY
        )
        assert code == 1
        assert "no metrics sidecar" in capsys.readouterr().out

    def test_family_sugar_writes_sidecar(self, capsys, tmp_path):
        from repro.cli import main

        store = str(tmp_path / "j.jsonl")
        code = main(
            ["sweep", "-n", "5", "-k", "2", "--seeds", "1", "--store",
             store, "--metrics", "--no-progress"]
        )
        assert code == 0
        data = read_sidecar(store + ".metrics.json")
        assert data["label"] == "sweeps"
