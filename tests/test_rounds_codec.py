"""Tests for the binary message codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.labeled import RoundLabeledDigraph
from repro.rounds.codec import (
    decode_message,
    encode_message,
    encoded_bit_size,
    worst_case_bits,
    _read_varint,
    _write_varint,
)
from repro.rounds.messages import Message


def make_msg(kind="prop", x=5, edges=(), nodes=(), sender=0, round_no=3):
    g = RoundLabeledDigraph(nodes=nodes, labeled_edges=edges)
    return Message(
        sender=sender, round_no=round_no, kind=kind,
        payload={"x": x, "graph": g},
    )


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**40])
    def test_roundtrip(self, value):
        out = bytearray()
        _write_varint(out, value)
        decoded, pos = _read_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            _write_varint(bytearray(), -1)

    def test_truncated(self):
        out = bytearray()
        _write_varint(out, 300)
        with pytest.raises(ValueError, match="truncated"):
            _read_varint(bytes(out[:-1]), 0)

    def test_single_byte_for_small(self):
        out = bytearray()
        _write_varint(out, 100)
        assert len(out) == 1


class TestCodec:
    def test_roundtrip_simple(self):
        msg = make_msg(edges=[(0, 1, 3), (1, 0, 2)], nodes=[2])
        assert decode_message(encode_message(msg)) == msg

    def test_roundtrip_decide(self):
        msg = make_msg(kind="decide", x=42)
        decoded = decode_message(encode_message(msg))
        assert decoded.kind == "decide"
        assert decoded.payload["x"] == 42

    def test_negative_estimate(self):
        msg = make_msg(x=-17)
        assert decode_message(encode_message(msg)).payload["x"] == -17

    def test_no_graph_payload(self):
        msg = Message(sender=1, round_no=2, kind="prop", payload={"x": 9})
        decoded = decode_message(encode_message(msg))
        assert decoded.payload["graph"].number_of_nodes() == 0

    def test_unknown_kind_rejected(self):
        msg = Message(sender=0, round_no=1, kind="gossip", payload={"x": 1})
        with pytest.raises(ValueError, match="unknown message kind"):
            encode_message(msg)

    def test_non_integer_estimate_rejected(self):
        msg = Message(sender=0, round_no=1, payload={"x": "a"})
        with pytest.raises(ValueError, match="integer"):
            encode_message(msg)

    def test_empty_bytes_rejected(self):
        with pytest.raises(ValueError):
            decode_message(b"")

    def test_trailing_bytes_rejected(self):
        data = encode_message(make_msg()) + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            decode_message(data)

    def test_bad_version(self):
        data = bytearray(encode_message(make_msg()))
        data[0] = (7 << 4) | (data[0] & 0x0F)
        with pytest.raises(ValueError, match="version"):
            decode_message(bytes(data))

    def test_real_algorithm_messages_roundtrip(self):
        # Encode every message of a real run and round-trip them all.
        from repro.adversaries.grouped import GroupedSourceAdversary
        from repro.core.algorithm import make_processes
        from repro.rounds.simulator import RoundSimulator, SimulationConfig

        adv = GroupedSourceAdversary(6, num_groups=2, seed=0, noise=0.2)
        run = RoundSimulator(
            make_processes(6),
            adv,
            SimulationConfig(max_rounds=20, record_messages=True),
        ).run()
        count = 0
        for r in range(1, run.num_rounds + 1):
            for msg in run.messages(r).values():
                decoded = decode_message(encode_message(msg))
                assert decoded.sender == msg.sender
                assert decoded.payload["x"] == msg.payload["x"]
                assert decoded.payload["graph"] == msg.payload["graph"]
                count += 1
        assert count == 6 * run.num_rounds


class TestSizes:
    def test_binary_smaller_than_json(self):
        msg = make_msg(edges=[(i, (i + 1) % 6, 3) for i in range(6)])
        assert encoded_bit_size(msg) < msg.bit_size()

    def test_worst_case_dominates_observed(self):
        from repro.adversaries.grouped import GroupedSourceAdversary
        from repro.core.algorithm import make_processes
        from repro.rounds.simulator import RoundSimulator, SimulationConfig

        n = 8
        adv = GroupedSourceAdversary(n, num_groups=2, seed=1, noise=0.4)
        run = RoundSimulator(
            make_processes(n),
            adv,
            SimulationConfig(max_rounds=25, record_messages=True),
        ).run()
        bound = worst_case_bits(n, run.num_rounds)
        for r in range(1, run.num_rounds + 1):
            for msg in run.messages(r).values():
                assert encoded_bit_size(msg) <= bound

    def test_worst_case_polynomial_growth(self):
        import math

        # log-log slope of the analytic bound stays close to 2 (n² edges).
        ns = [8, 16, 32, 64, 128]
        sizes = [worst_case_bits(n, 3 * n) for n in ns]
        slope = (math.log(sizes[-1]) - math.log(sizes[0])) / (
            math.log(ns[-1]) - math.log(ns[0])
        )
        assert 1.8 < slope < 2.6


edge_st = st.tuples(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=1, max_value=500),
)


class TestCodecProperties:
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=-(2**30), max_value=2**30),
        st.lists(edge_st, max_size=40),
        st.sampled_from(["prop", "decide"]),
    )
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, sender, round_no, x, edges, kind):
        msg = make_msg(
            kind=kind, x=x, edges=edges, sender=sender, round_no=round_no
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.sender == sender
        assert decoded.round_no == round_no
        assert decoded.kind == kind
        assert decoded.payload["x"] == x
        # max-merge on insert means the decoded graph equals the original
        # (which applied the same max-merge).
        assert decoded.payload["graph"] == msg.payload["graph"]
