"""Cross-kernel property tests: the set-based skeleton machinery vs the
vectorized NumPy kernels, on random round sequences."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.graphs.condensation import count_root_components
from repro.graphs.generators import from_adjacency, to_adjacency
from repro.graphs.matrices import (
    prefix_intersections,
    root_component_count_matrix,
    timely_neighborhoods,
)
from repro.skeleton.tracker import SkeletonTracker


@st.composite
def round_stacks(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    rounds = draw(st.integers(min_value=1, max_value=6))
    stack = draw(
        arrays(dtype=bool, shape=(rounds, n, n))
    )
    # enforce self-delivery, as the simulator does
    for r in range(rounds):
        np.fill_diagonal(stack[r], True)
    return stack


class TestTrackerVsMatrices:
    @given(round_stacks())
    @settings(max_examples=100, deadline=None)
    def test_tracker_matches_prefix_intersections(self, stack):
        n = stack.shape[1]
        tracker = SkeletonTracker(n)
        prefixes = prefix_intersections(stack)
        for r in range(stack.shape[0]):
            skeleton = tracker.observe(from_adjacency(stack[r]))
            assert to_adjacency(skeleton, n).tolist() == prefixes[r].tolist()

    @given(round_stacks())
    @settings(max_examples=80, deadline=None)
    def test_root_counts_agree(self, stack):
        n = stack.shape[1]
        tracker = SkeletonTracker(n)
        for r in range(stack.shape[0]):
            tracker.observe(from_adjacency(stack[r]))
        final = tracker.skeleton
        assert count_root_components(final) == root_component_count_matrix(
            to_adjacency(final, n)
        )

    @given(round_stacks())
    @settings(max_examples=80, deadline=None)
    def test_timely_neighborhoods_agree(self, stack):
        n = stack.shape[1]
        tracker = SkeletonTracker(n)
        for r in range(stack.shape[0]):
            tracker.observe(from_adjacency(stack[r]))
        pts = timely_neighborhoods(to_adjacency(tracker.skeleton, n))
        for p in range(n):
            assert tracker.timely_neighborhood(p) == pts[p]

    @given(round_stacks())
    @settings(max_examples=80, deadline=None)
    def test_skeleton_monotone(self, stack):
        n = stack.shape[1]
        tracker = SkeletonTracker(n)
        previous = None
        for r in range(stack.shape[0]):
            skeleton = tracker.observe(from_adjacency(stack[r])).copy()
            if previous is not None:
                assert previous.is_supergraph_of(skeleton)
            previous = skeleton
        counts = tracker.edge_counts()
        assert all(a >= b for a, b in zip(counts, counts[1:]))
