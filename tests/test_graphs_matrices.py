"""Cross-validation of the vectorized NumPy kernels against the set-based
implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.graphs.condensation import count_root_components
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random, to_adjacency, from_adjacency
from repro.graphs.matrices import (
    batched_transitive_closure,
    conflict_matrix,
    intersect_all,
    is_strongly_connected_matrix,
    prefix_intersections,
    root_component_count_matrix,
    scc_labels,
    timely_neighborhoods,
    transitive_closure,
)
from repro.graphs.paths import ancestors, descendants, has_path
from repro.graphs.scc import (
    is_strongly_connected,
    kosaraju_scc,
    scc_of,
    tarjan_scc,
)
from repro.predicates.psrcs import conflict_graph


def adjacency(n: int, seed: int, p: float = 0.15) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((n, n)) < p


class TestIntersect:
    def test_intersect_all(self):
        stack = np.array(
            [
                [[1, 1], [0, 1]],
                [[1, 0], [0, 1]],
                [[1, 1], [1, 1]],
            ],
            dtype=bool,
        )
        out = intersect_all(stack)
        assert out.tolist() == [[True, False], [False, True]]

    def test_prefix_matches_manual(self):
        stack = np.stack([adjacency(8, s) for s in range(5)])
        prefixes = prefix_intersections(stack)
        manual = stack[0].copy()
        for i in range(5):
            if i > 0:
                manual &= stack[i]
            assert np.array_equal(prefixes[i], manual)

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            intersect_all(np.zeros((3, 3), dtype=bool))
        with pytest.raises(ValueError):
            prefix_intersections(np.zeros((3, 3), dtype=bool))

    def test_matches_digraph_intersection(self):
        rng = np.random.default_rng(0)
        graphs = [gnp_random(10, 0.4, rng) for _ in range(4)]
        stack = np.stack([to_adjacency(g, 10) for g in graphs])
        expected = graphs[0]
        for g in graphs[1:]:
            expected = expected.intersection(g)
        assert from_adjacency(intersect_all(stack)) == expected


class TestClosure:
    @pytest.mark.parametrize("seed", range(6))
    def test_closure_matches_bfs(self, seed):
        adj = adjacency(14, seed)
        g = from_adjacency(adj)
        closure = transitive_closure(adj)
        for u in range(14):
            reach = descendants(g, u)
            assert frozenset(np.nonzero(closure[u])[0].tolist()) == reach

    def test_closure_non_reflexive(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = True
        closure = transitive_closure(adj, reflexive=False)
        assert not closure[0, 0]
        assert closure[0, 1]

    def test_closure_requires_square(self):
        with pytest.raises(ValueError):
            transitive_closure(np.zeros((2, 3), dtype=bool))

    @pytest.mark.parametrize("seed", range(6))
    def test_strong_connectivity_matches(self, seed):
        adj = adjacency(12, seed, p=0.25)
        assert is_strongly_connected_matrix(adj) == is_strongly_connected(
            from_adjacency(adj)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_scc_labels_match_tarjan(self, seed):
        adj = adjacency(13, seed)
        labels = scc_labels(adj)
        ours = {}
        for comp in tarjan_scc(from_adjacency(adj)):
            for node in comp:
                ours[node] = frozenset(comp)
        for u in range(13):
            for v in range(13):
                assert (labels[u] == labels[v]) == (ours[u] == ours[v])

    @pytest.mark.parametrize("seed", range(8))
    def test_root_count_matches(self, seed):
        adj = adjacency(12, seed)
        assert root_component_count_matrix(adj) == count_root_components(
            from_adjacency(adj)
        )


class TestBatchedClosure:
    """The batched kernel must agree with the 2-D kernel member-wise (and
    therefore, transitively, with the set-based BFS implementations)."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("reflexive", [True, False])
    def test_matches_per_member_closure(self, seed, reflexive):
        rng = np.random.default_rng(seed)
        stack = rng.random((5, 11, 11)) < 0.2
        batched = batched_transitive_closure(stack, reflexive=reflexive)
        for i in range(5):
            assert np.array_equal(
                batched[i], transitive_closure(stack[i], reflexive=reflexive)
            )

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 13, 20])
    def test_fixed_iterations_reaches_fixpoint(self, seed, n):
        # The call-overhead-free mode must compute the identical closure:
        # ceil(log2(n - 1)) squarings provably suffice with the diagonal
        # set, including on the worst case (a directed path).
        rng = np.random.default_rng(seed)
        stack = rng.random((4, n, n)) < 0.25
        assert np.array_equal(
            batched_transitive_closure(stack, fixed_iterations=True),
            batched_transitive_closure(stack),
        )

    def test_fixed_iterations_on_path_graph(self):
        # Longest possible shortest path: 0 -> 1 -> ... -> n-1.
        n = 9
        path = np.zeros((1, n, n), dtype=bool)
        path[0, np.arange(n - 1), np.arange(1, n)] = True
        closure = batched_transitive_closure(path, fixed_iterations=True)[0]
        assert closure[0, n - 1]
        assert np.array_equal(closure, np.triu(np.ones((n, n), dtype=bool)))

    def test_rejects_non_stack(self):
        with pytest.raises(ValueError):
            batched_transitive_closure(np.zeros((3, 3), dtype=bool))
        with pytest.raises(ValueError):
            batched_transitive_closure(np.zeros((2, 3, 4), dtype=bool))

    def test_empty_batch_and_empty_graphs(self):
        assert batched_transitive_closure(
            np.zeros((0, 4, 4), dtype=bool)
        ).shape == (0, 4, 4)
        assert batched_transitive_closure(
            np.zeros((3, 0, 0), dtype=bool)
        ).shape == (3, 0, 0)

    def test_returns_bool(self):
        out = batched_transitive_closure(np.eye(3, dtype=bool)[None])
        assert out.dtype == np.bool_


class TestRootComponentScatter:
    """The vectorized label-scatter version of the root-component count."""

    @pytest.mark.parametrize("n,p,seed", [
        (n, p, seed)
        for n in (1, 2, 6, 11, 17)
        for p in (0.0, 0.08, 0.3, 1.0)
        for seed in range(3)
    ])
    def test_matches_condensation(self, n, p, seed):
        rng = np.random.default_rng(seed)
        adj = rng.random((n, n)) < p
        assert root_component_count_matrix(adj) == count_root_components(
            from_adjacency(adj)
        )

    def test_empty_graph(self):
        assert root_component_count_matrix(np.zeros((0, 0), dtype=bool)) == 0

    def test_isolated_nodes_are_roots(self):
        assert root_component_count_matrix(np.zeros((4, 4), dtype=bool)) == 4

    def test_single_scc_is_one_root(self):
        assert root_component_count_matrix(np.ones((5, 5), dtype=bool)) == 1


class TestPredicateKernels:
    @pytest.mark.parametrize("seed", range(5))
    def test_timely_neighborhoods(self, seed):
        adj = adjacency(10, seed, p=0.3)
        g = from_adjacency(adj)
        pts = timely_neighborhoods(adj)
        for p in range(10):
            assert pts[p] == g.predecessors(p)

    @pytest.mark.parametrize("seed", range(5))
    def test_conflict_matrix_matches_set_version(self, seed):
        adj = adjacency(10, seed, p=0.3)
        g = from_adjacency(adj)
        mat = conflict_matrix(adj)
        ref = conflict_graph(g)
        for q in range(10):
            assert frozenset(np.nonzero(mat[q])[0].tolist()) == frozenset(ref[q])

    def test_conflict_matrix_symmetric_no_diagonal(self):
        adj = adjacency(12, 3, p=0.4)
        mat = conflict_matrix(adj)
        assert np.array_equal(mat, mat.T)
        assert not mat.diagonal().any()


class TestCrossValidationSetBased:
    """Property-style cross-validation of every matrix kernel against the
    set-based :mod:`repro.graphs.scc` / :mod:`repro.graphs.paths`
    implementations on seeded randomized digraphs, across densities
    spanning fragmented to almost-surely-strongly-connected."""

    CASES = [
        (n, p, seed)
        for n in (5, 9, 14)
        for p in (0.05, 0.15, 0.35)
        for seed in range(3)
    ]

    @pytest.mark.parametrize("n,p,seed", CASES)
    def test_closure_rows_and_columns(self, n, p, seed):
        adj = adjacency(n, seed, p=p)
        g = from_adjacency(adj)
        closure = transitive_closure(adj)
        for u in range(n):
            row = frozenset(np.nonzero(closure[u])[0].tolist())
            col = frozenset(np.nonzero(closure[:, u])[0].tolist())
            assert row == descendants(g, u)
            assert col == ancestors(g, u)

    @pytest.mark.parametrize("n,p,seed", CASES)
    def test_closure_entries_match_has_path(self, n, p, seed):
        adj = adjacency(n, seed, p=p)
        g = from_adjacency(adj)
        closure = transitive_closure(adj)
        for u in range(n):
            for v in range(n):
                assert closure[u, v] == has_path(g, u, v)

    @pytest.mark.parametrize("n,p,seed", CASES)
    def test_nonreflexive_closure_matches_paths(self, n, p, seed):
        adj = adjacency(n, seed, p=p)
        g = from_adjacency(adj)
        closure = transitive_closure(adj, reflexive=False)
        for u in range(n):
            for v in range(n):
                if u == v:
                    # Diagonal: on a cycle through u, i.e. some successor
                    # of u reaches back to u.
                    expected = any(
                        has_path(g, w, u) for w in g.successors(u)
                    )
                else:
                    expected = has_path(g, u, v)
                assert closure[u, v] == expected

    @pytest.mark.parametrize("n,p,seed", CASES)
    def test_scc_labels_match_kosaraju_and_scc_of(self, n, p, seed):
        adj = adjacency(n, seed, p=p)
        g = from_adjacency(adj)
        labels = scc_labels(adj)
        partition = {
            frozenset(np.nonzero(labels == lbl)[0].tolist())
            for lbl in np.unique(labels)
        }
        assert partition == set(kosaraju_scc(g))
        for u in range(n):
            members = frozenset(np.nonzero(labels == labels[u])[0].tolist())
            assert members == scc_of(g, u)

    @pytest.mark.parametrize("n,p,seed", CASES)
    def test_intersection_stack_matches_set_semantics(self, n, p, seed):
        rng = np.random.default_rng(seed)
        graphs = [gnp_random(n, p + 0.3, rng) for _ in range(4)]
        stack = np.stack([to_adjacency(g, n) for g in graphs])
        prefixes = prefix_intersections(stack)
        expected = graphs[0]
        for i, g in enumerate(graphs):
            if i > 0:
                expected = expected.intersection(g)
            assert from_adjacency(prefixes[i]) == expected
        assert from_adjacency(intersect_all(stack)) == expected


class TestHypothesis:
    @given(
        arrays(dtype=bool, shape=st.tuples(st.integers(1, 8), st.integers(1, 8)).map(
            lambda t: (max(t), max(t))
        ))
    )
    @settings(max_examples=80, deadline=None)
    def test_closure_idempotent(self, adj):
        closure = transitive_closure(adj)
        again = transitive_closure(closure)
        assert np.array_equal(closure, again)

    @given(
        arrays(dtype=bool, shape=st.integers(1, 7).map(lambda n: (n, n)))
    )
    @settings(max_examples=80, deadline=None)
    def test_closure_contains_adjacency(self, adj):
        closure = transitive_closure(adj)
        assert np.all(closure | ~adj)

    @given(
        arrays(dtype=bool, shape=st.integers(1, 6).map(lambda n: (3, n, n)))
    )
    @settings(max_examples=60, deadline=None)
    def test_intersection_subset_chain(self, stack):
        # The skeleton chain (1): prefix intersections only shrink.
        prefixes = prefix_intersections(stack)
        for i in range(1, len(prefixes)):
            assert np.all(prefixes[i - 1] | ~prefixes[i])
