"""Tests for the round-labeled digraph (Algorithm 1's data structure)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.labeled import RoundLabeledDigraph


class TestBasics:
    def test_empty(self):
        g = RoundLabeledDigraph()
        assert g.number_of_nodes() == 0
        assert g.number_of_edges() == 0
        assert g.min_label() is None and g.max_label() is None

    def test_add_edge_adds_nodes(self):
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 5)
        assert g.nodes() == frozenset({0, 1})
        assert g.label(0, 1) == 5

    def test_max_merge_on_add(self):
        # Alg. 1 line 22: keep the max round label per ordered pair.
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 3)
        g.add_edge(0, 1, 7)
        g.add_edge(0, 1, 5)
        assert g.label(0, 1) == 7
        assert g.number_of_edges() == 1

    def test_set_edge_overwrites(self):
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 7)
        g.set_edge(0, 1, 2)
        assert g.label(0, 1) == 2

    def test_one_label_per_pair_invariant(self):
        # Lemma 3(c)/4(b): never two labels for the same ordered pair.
        g = RoundLabeledDigraph()
        for lbl in (1, 4, 2, 9):
            g.add_edge(3, 4, lbl)
        assert len(g.labeled_edges()) == 1

    def test_directions_independent(self):
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 1)
        g.add_edge(1, 0, 2)
        assert g.label(0, 1) == 1
        assert g.label(1, 0) == 2

    def test_get_label_default(self):
        g = RoundLabeledDigraph()
        assert g.get_label(0, 1) is None
        assert g.get_label(0, 1, default=-1) == -1

    def test_label_missing_raises(self):
        with pytest.raises(KeyError):
            RoundLabeledDigraph().label(0, 1)

    def test_remove_edge(self):
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 1)
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_remove_node(self):
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 1)
        g.add_edge(1, 2, 2)
        g.add_edge(2, 0, 3)
        g.remove_node(1)
        assert g.nodes() == frozenset({0, 2})
        assert g.edges() == frozenset({(2, 0)})

    def test_remove_missing_node_raises(self):
        with pytest.raises(KeyError):
            RoundLabeledDigraph().remove_node(5)

    def test_neighbors(self):
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 1)
        g.add_edge(2, 1, 1)
        g.add_edge(1, 3, 1)
        assert g.predecessors(1) == frozenset({0, 2})
        assert g.successors(1) == frozenset({3})

    def test_predecessors_after_removal(self):
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 1)
        g.remove_edge(0, 1)
        assert g.predecessors(1) == frozenset()

    def test_equality_and_hash(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 2)])
        h = RoundLabeledDigraph(labeled_edges=[(0, 1, 2)])
        assert g == h
        h.add_edge(0, 1, 3)
        assert g != h
        with pytest.raises(TypeError):
            hash(g)


class TestPurge:
    def test_purge_removes_old(self):
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 5)
        dead = g.purge_older_than(2)
        assert dead == [(0, 1, 2)]
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 1)

    def test_purge_boundary_is_inclusive(self):
        # Line 24: discard where re <= r - n (inclusive).
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 3)
        g.purge_older_than(3)
        assert g.number_of_edges() == 0

    def test_purge_keeps_nodes(self):
        g = RoundLabeledDigraph()
        g.add_edge(0, 1, 1)
        g.purge_older_than(10)
        assert g.nodes() == frozenset({0, 1})

    def test_min_max_labels(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 2), (1, 2, 9), (2, 0, 4)])
        assert g.min_label() == 2
        assert g.max_label() == 9


class TestDerived:
    def test_copy_independent(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 1)])
        h = g.copy()
        h.add_edge(1, 0, 2)
        assert not g.has_edge(1, 0)

    def test_unweighted_view(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 1), (1, 2, 5)])
        g.add_node(9)
        u = g.unweighted()
        assert u.nodes() == frozenset({0, 1, 2, 9})
        assert u.edges() == frozenset({(0, 1), (1, 2)})

    def test_merge_max(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 3), (1, 2, 1)])
        h = RoundLabeledDigraph(labeled_edges=[(0, 1, 5), (2, 0, 2)])
        g.merge_max(h)
        assert g.label(0, 1) == 5
        assert g.label(1, 2) == 1
        assert g.label(2, 0) == 2

    def test_merge_max_nodes(self):
        g = RoundLabeledDigraph(nodes=[0])
        h = RoundLabeledDigraph(nodes=[1, 2])
        g.merge_max(h)
        assert g.nodes() == frozenset({0, 1, 2})

    def test_dict_roundtrip(self):
        g = RoundLabeledDigraph(nodes=[5], labeled_edges=[(0, 1, 3), (1, 0, 2)])
        h = RoundLabeledDigraph.from_dict(g.to_dict())
        assert g == h

    def test_repr(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 1)])
        assert "|V|=2" in repr(g)


label_edge = st.tuples(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=1, max_value=30),
)


class TestLabeledProperties:
    @given(st.lists(label_edge, max_size=50))
    @settings(max_examples=120, deadline=None)
    def test_label_is_max_of_inserts(self, edges):
        g = RoundLabeledDigraph()
        best: dict[tuple[int, int], int] = {}
        for u, v, lbl in edges:
            g.add_edge(u, v, lbl)
            best[(u, v)] = max(best.get((u, v), lbl), lbl)
        for (u, v), lbl in best.items():
            assert g.label(u, v) == lbl

    @given(st.lists(label_edge, max_size=50), st.integers(min_value=0, max_value=30))
    @settings(max_examples=120, deadline=None)
    def test_purge_threshold(self, edges, cutoff):
        g = RoundLabeledDigraph()
        for u, v, lbl in edges:
            g.add_edge(u, v, lbl)
        g.purge_older_than(cutoff)
        for _, _, lbl in g.iter_labeled_edges():
            assert lbl > cutoff

    @given(st.lists(label_edge, max_size=40), st.lists(label_edge, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_merge_max_is_commutative_on_labels(self, e1, e2):
        a = RoundLabeledDigraph(labeled_edges=e1)
        b = RoundLabeledDigraph(labeled_edges=e2)
        ab = a.copy()
        ab.merge_max(b)
        ba = b.copy()
        ba.merge_max(a)
        assert ab == ba
