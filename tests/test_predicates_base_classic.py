"""Tests for predicate combinators and the classic reference predicates."""

from __future__ import annotations

import pytest

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.graphs.digraph import DiGraph
from repro.predicates.base import And, Not, Or, PredicateResult
from repro.predicates.classic import (
    BoundedRootComponents,
    KernelNonEmpty,
    NoSplit,
    PTrue,
    SingleRootComponent,
)
from repro.predicates.psrcs import Psrcs


def star_skeleton(n: int, center: int = 0) -> DiGraph:
    g = DiGraph(nodes=range(n))
    for q in range(n):
        g.add_edge(q, q)
        g.add_edge(center, q)
    return g


def isolated_skeleton(n: int) -> DiGraph:
    g = DiGraph(nodes=range(n))
    for q in range(n):
        g.add_edge(q, q)
    return g


class TestCombinators:
    def test_result_bool(self):
        assert bool(PredicateResult(True, "x"))
        assert not bool(PredicateResult(False, "x"))

    def test_explain(self):
        r = PredicateResult(False, "P", witness={1, 2})
        assert "VIOLATED" in r.explain()
        assert "P" in r.explain()

    def test_and(self):
        g = star_skeleton(5)
        combined = Psrcs(1) & KernelNonEmpty()
        assert combined.check_skeleton(g).holds

    def test_and_short_circuit_witness(self):
        g = isolated_skeleton(4)
        combined = And(Psrcs(1), PTrue())
        result = combined.check_skeleton(g)
        assert not result.holds
        assert isinstance(result.witness, PredicateResult)

    def test_and_empty_rejected(self):
        with pytest.raises(ValueError):
            And()
        with pytest.raises(ValueError):
            Or()

    def test_or(self):
        g = isolated_skeleton(4)
        assert (Psrcs(1) | PTrue()).check_skeleton(g).holds
        assert not Or(Psrcs(1), Psrcs(2)).check_skeleton(g).holds

    def test_not(self):
        g = isolated_skeleton(4)
        assert (~Psrcs(1)).check_skeleton(g).holds
        assert not (~PTrue()).check_skeleton(g).holds

    def test_names(self):
        assert "Psrcs(2)" in (Psrcs(2) & PTrue()).name
        assert (~PTrue()).name == "¬Ptrue"
        assert "∨" in (PTrue() | PTrue()).name

    def test_repr(self):
        assert "Psrcs(3)" in repr(Psrcs(3))


class TestClassic:
    def test_ptrue_always(self):
        assert PTrue().check_skeleton(isolated_skeleton(3)).holds
        assert PTrue().check_skeleton(DiGraph()).holds

    def test_bounded_root_components(self):
        g = isolated_skeleton(4)  # 4 singleton root components
        assert BoundedRootComponents(4).check_skeleton(g).holds
        assert not BoundedRootComponents(3).check_skeleton(g).holds

    def test_bounded_validated(self):
        with pytest.raises(ValueError):
            BoundedRootComponents(0)

    def test_single_root_component(self):
        assert SingleRootComponent().check_skeleton(star_skeleton(5)).holds
        assert not SingleRootComponent().check_skeleton(isolated_skeleton(2)).holds

    def test_theorem1_implication_on_designs(self):
        # Psrcs(k) ⇒ <= k root components (Theorem 1), checked on the
        # grouped designs.
        for m in (1, 2, 3):
            adv = GroupedSourceAdversary(9, num_groups=m)
            stable = adv.declared_stable_graph()
            assert Psrcs(m).check_skeleton(stable).holds
            assert BoundedRootComponents(m).check_skeleton(stable).holds

    def test_converse_of_theorem1_fails(self):
        # One root component but Psrcs(1) violated: a directed chain.
        # PT(0)={0}, PT(1)={0,1}, PT(2)={1,2}: {0,2} has no common source.
        g = DiGraph(nodes=range(3))
        for q in range(3):
            g.add_edge(q, q)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert BoundedRootComponents(1).check_skeleton(g).holds
        assert not Psrcs(1).check_skeleton(g).holds

    def test_kernel_nonempty(self):
        assert KernelNonEmpty().check_skeleton(star_skeleton(4)).holds
        result = KernelNonEmpty().check_skeleton(star_skeleton(4))
        assert result.witness == 0
        assert not KernelNonEmpty().check_skeleton(isolated_skeleton(3)).holds

    def test_kernel_implies_psrcs_all_k(self):
        g = star_skeleton(6, center=2)
        assert KernelNonEmpty().check_skeleton(g).holds
        for k in range(1, 6):
            assert Psrcs(k).check_skeleton(g).holds

    def test_nosplit_equals_psrcs1(self):
        import numpy as np

        from repro.graphs.generators import gnp_random

        for seed in range(10):
            g = gnp_random(7, 0.3, np.random.default_rng(seed), self_loops=True)
            assert (
                NoSplit().check_skeleton(g).holds
                == Psrcs(1).check_skeleton(g).holds
            )

    def test_nosplit_witness(self):
        g = isolated_skeleton(3)
        result = NoSplit().check_skeleton(g)
        assert not result.holds
        assert len(result.witness) == 2
