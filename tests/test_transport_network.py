"""Tests for latency models and the network transport."""

from __future__ import annotations

import pytest

from repro.transport.network import (
    FixedLatency,
    Network,
    PartiallySynchronousLatency,
    UniformLatency,
)


class TestFixedLatency:
    def test_constant(self):
        m = FixedLatency(2.5)
        assert m.latency(0, 1, 0) == 2.5
        assert m.latency(0, 1, 99) == 2.5

    def test_self_delivery_zero(self):
        assert FixedLatency(2.5).latency(3, 3, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)


class TestUniformLatency:
    def test_bounds(self):
        m = UniformLatency(1.0, 3.0, seed=1)
        for idx in range(50):
            d = m.latency(0, 1, idx)
            assert 1.0 <= d <= 3.0

    def test_deterministic(self):
        a = UniformLatency(0.0, 1.0, seed=7)
        b = UniformLatency(0.0, 1.0, seed=7)
        assert a.latency(2, 3, 5) == b.latency(2, 3, 5)

    def test_varies_per_message(self):
        m = UniformLatency(0.0, 1.0, seed=7)
        delays = {m.latency(0, 1, idx) for idx in range(10)}
        assert len(delays) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 1.0)


class TestPartiallySynchronous:
    def make(self, **kw):
        defaults = dict(
            core_links=[(0, 1), (0, 2)],
            fast_min=0.1,
            fast_max=0.9,
            slow_prob=0.5,
            slow_min=5.0,
            slow_max=50.0,
            seed=0,
        )
        defaults.update(kw)
        return PartiallySynchronousLatency(**defaults)

    def test_core_always_fast(self):
        m = self.make()
        for idx in range(100):
            assert m.latency(0, 1, idx) <= 0.9
            assert m.latency(0, 2, idx) <= 0.9

    def test_non_core_sometimes_slow(self):
        m = self.make()
        delays = [m.latency(1, 2, idx) for idx in range(100)]
        assert any(d >= 5.0 for d in delays)
        assert any(d <= 0.9 for d in delays)

    def test_slow_prob_one_always_slow(self):
        m = self.make(slow_prob=1.0)
        for idx in range(20):
            assert m.latency(1, 2, idx) >= 5.0

    def test_self_zero(self):
        assert self.make().latency(4, 4, 0) == 0.0

    def test_is_core(self):
        m = self.make()
        assert m.is_core(0, 1)
        assert m.is_core(3, 3)
        assert not m.is_core(1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(fast_min=2.0, fast_max=1.0)
        with pytest.raises(ValueError):
            self.make(slow_min=0.5)  # below fast_max
        with pytest.raises(ValueError):
            self.make(slow_prob=2.0)


class TestNetwork:
    def test_broadcast_covers_everyone(self):
        net = Network(4, FixedLatency(1.0))
        delays = net.broadcast_delays(0)
        assert set(delays) == {0, 1, 2, 3}
        assert delays[0] == 0.0
        assert all(delays[v] == 1.0 for v in (1, 2, 3))

    def test_message_counter_advances(self):
        net = Network(2, UniformLatency(0.0, 1.0, seed=3))
        first = net.broadcast_delays(0)[1]
        second = net.broadcast_delays(0)[1]
        # different msg_index → (almost surely) different delay
        assert first != second

    def test_n_validated(self):
        with pytest.raises(ValueError):
            Network(0, FixedLatency(1.0))

    def test_negative_latency_detected(self):
        class Bad(FixedLatency):
            def latency(self, s, r, i):
                return -1.0

        bad = Bad.__new__(Bad)
        bad.delay = -1.0
        net = Network(2, bad)
        with pytest.raises(ValueError, match="negative"):
            net.broadcast_delays(0)
