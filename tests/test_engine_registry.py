"""The experiment registry: every family is a campaign, byte-identical
to its pre-registry in-process driver.

The round-trip tests re-implement the *historical* driver loops inline
(the exact code the registry replaced) and assert the registry path —
spec grid → (possibly parallel) executor → journaled records →
aggregator — reproduces their output exactly, not approximately."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.campaign import Campaign
from repro.engine.executor import execute_scenarios, require_ok
from repro.engine.registry import (
    ALIASES,
    ExperimentSpec,
    family_campaign,
    family_names,
    get_family,
    run_family,
    run_registered_scenario,
)
from repro.engine.scenarios import ScenarioSpec
from repro.engine.store import canonical_line, decode_result, encode_result

SEVEN_FAMILIES = (
    "figure1",
    "theorem2",
    "sweeps",
    "ablation",
    "duality",
    "eventual",
    "latency",
)


class TestRegistryBasics:
    def test_standard_families_registered(self):
        names = family_names()
        for name in SEVEN_FAMILIES + ("termination",):
            assert name in names

    def test_aliases_resolve(self):
        for alias, target in ALIASES.items():
            assert get_family(alias).name == target

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown experiment family"):
            get_family("nope")

    def test_every_family_has_a_nonempty_default_grid(self):
        for name in SEVEN_FAMILIES:
            specs = get_family(name).grid()
            assert specs, name
            ids = [s.scenario_id for s in specs]
            assert len(ids) == len(set(ids)), name

    def test_family_spec_shape(self):
        for name in SEVEN_FAMILIES:
            family = get_family(name)
            assert isinstance(family, ExperimentSpec)
            assert family.headers and family.row is not None

    def test_unknown_family_option_contained_as_error(self):
        spec = ScenarioSpec(n=5, options=(("family", "bogus"),))
        result = run_registered_scenario(spec, "reference")
        assert result.status == "error"
        assert "unknown experiment family" in result.error

    def test_forced_vectorized_on_custom_runner_family_errors(self):
        # The ablation grid mixes fast-path-covered arms (non-hooked
        # variants, which a forced fast backend *can* run via the twin)
        # with reference-only arms (the invariant-hook arm), which must
        # come back as explicit errors — and partial coverage means the
        # family as a whole rejects a forced fast backend up front.
        grid = get_family("ablation").grid({"n": 5, "k": 2, "seeds": 1})
        covered = next(
            s for s in grid if not s.opt("hooks", True)
            and not s.opt("min_over_all")
        )
        hooked = next(s for s in grid if s.opt("hooks", True))
        ok = run_registered_scenario(covered, "vectorized")
        assert ok.status == "ok" and ok.backend == "vectorized"
        result = run_registered_scenario(hooked, "vectorized")
        assert result.status == "error"
        assert "FastPathUnsupported" in result.error
        with pytest.raises(ValueError, match="does not support backend"):
            family_campaign("ablation", backend="vectorized")


class TestFigure1Family:
    def test_round_trip_matches_in_process_renderer(self):
        from repro.experiments.figure1 import render_figure1

        results = run_family("figure1")
        assert len(results) == 1
        result = results[0]
        assert result.ok
        assert result.extra("confirms_figure1") is True
        assert result.root_components == 2
        assert result.psrcs_holds is True
        assert result.decision_values == (1, 3)
        # The journaled rendering is byte-identical to the historical
        # in-process rendering.
        assert result.extra("rendering") == render_figure1(max_rounds=20)
        text, code = get_family("figure1").render(results)
        assert code == 0
        assert text == (
            "Figure 1 — 6 processes, Psrcs(3) holds (self-loops omitted)"
            "\n\n" + render_figure1(max_rounds=20)
        )


class TestTheorem2Family:
    @pytest.mark.parametrize("n,k", [(6, 3), (7, 2)])
    def test_round_trip_matches_in_process_driver(self, n, k):
        from repro.experiments.theorem2 import theorem2_experiment

        report = theorem2_experiment(n, k)
        (result,) = run_family("theorem2", {"n": [n], "k": [k]})
        assert result.ok
        assert result.psrcs_holds == report.psrcs_k_holds
        assert (
            result.extra("psrcs_k_minus_1_holds")
            == report.psrcs_k_minus_1_holds
        )
        assert result.distinct_decisions == report.distinct_decisions
        assert (
            result.extra("isolated_decided_own")
            == report.isolated_decided_own
        )
        assert result.extra("confirms_theorem") == report.confirms_theorem
        assert result.extra("confirms_theorem") is True


class TestSweepsFamily:
    def test_round_trip_matches_agreement_sweep(self):
        from repro.experiments.sweeps import (
            agreement_sweep,
            sweep_result_from_scenario,
        )

        rows = agreement_sweep(ns=[5, 6], ks=[2], seeds=[0], noise=0.15)
        results = run_family(
            "sweeps", {"n": [5, 6], "k": [2], "seeds": 1, "noise": 0.15}
        )
        assert [sweep_result_from_scenario(r) for r in results] == rows


class TestAblationFamily:
    N, K, SEEDS = 6, 2, range(3)

    @staticmethod
    def _historical_outcome(variant, n, k, seeds, noise=0.35,
                            purge_window=None, prune_unreachable=True,
                            min_over_all=False, hooks=True):
        """The pre-registry driver loop (hook attachment now follows the
        variant's instrumentation flag — see standard_variants)."""
        from repro.adversaries.grouped import GroupedSourceAdversary
        from repro.analysis.properties import check_agreement_properties
        from repro.core.algorithm import SkeletonAgreementProcess
        from repro.core.invariants import (
            InvariantViolation,
            make_invariant_hook,
        )
        from repro.experiments.ablation import (
            AblationOutcome,
            MinOverAllProcess,
        )
        from repro.rounds.simulator import RoundSimulator, SimulationConfig

        invariant_violations = agreement_violations = 0
        termination_failures = 0
        max_decide = None
        for seed in seeds:
            adv = GroupedSourceAdversary(
                n, num_groups=k, seed=seed, noise=noise, topology="cycle"
            )
            cls = MinOverAllProcess if min_over_all else SkeletonAgreementProcess
            procs = [
                cls(pid, n, pid, purge_window=purge_window,
                    prune_unreachable=prune_unreachable)
                for pid in range(n)
            ]
            sim = RoundSimulator(
                procs, adv, SimulationConfig(max_rounds=8 * n),
                invariant_hooks=[make_invariant_hook()] if hooks else [],
            )
            try:
                run = sim.run()
            except InvariantViolation:
                invariant_violations += 1
                continue
            report = check_agreement_properties(run, k)
            if not report.k_agreement.holds or not report.validity.holds:
                agreement_violations += 1
            if not report.termination.holds:
                termination_failures += 1
            rounds = [d.round_no for d in run.decisions.values()]
            if rounds:
                max_decide = max(max_decide or 0, max(rounds))
        return AblationOutcome(
            variant=variant, runs=len(seeds),
            invariant_violations=invariant_violations if hooks else None,
            agreement_violations=agreement_violations,
            termination_failures=termination_failures,
            max_decision_round=max_decide,
        )

    def test_round_trip_matches_historical_loop(self):
        from repro.experiments.ablation import (
            ablation_outcomes,
            standard_variants,
        )

        results = run_family(
            "ablation", {"n": self.N, "k": self.K, "seeds": len(self.SEEDS)}
        )
        outcomes = ablation_outcomes(results)
        expected = [
            self._historical_outcome(variant, self.N, self.K, self.SEEDS,
                                     **knobs)
            for variant, knobs in standard_variants(self.N)
        ]
        assert outcomes == expected

    def test_parallel_equals_serial(self):
        from repro.experiments.ablation import ablation_grid

        specs = ablation_grid(self.N, self.K, range(2))
        serial = execute_scenarios(specs, jobs=1)
        parallel = execute_scenarios(specs, jobs=2, chunksize=2)
        assert parallel == serial


class TestDualityFamily:
    NS, DENSITIES, SEEDS = (6, 8), (0.1, 0.3), range(3)

    @staticmethod
    def _historical_rows(ns, densities, seeds):
        """The pre-registry driver loop, verbatim."""
        from repro.experiments.duality import duality_profile
        from repro.graphs.generators import gnp_random

        rows = []
        for n in ns:
            for p in densities:
                rcs, alphas, gaps, violations = [], [], [], 0
                for seed in seeds:
                    g = gnp_random(
                        n, p,
                        np.random.default_rng([n, int(p * 1000), seed]),
                        self_loops=True,
                    )
                    profile = duality_profile(g)
                    rcs.append(profile.root_components)
                    alphas.append(profile.alpha)
                    gaps.append(profile.gap)
                    if not profile.theorem1_holds:
                        violations += 1
                rows.append([n, p, float(np.mean(rcs)),
                             float(np.mean(alphas)), float(np.mean(gaps)),
                             violations])
        return rows

    def test_round_trip_matches_historical_loop(self):
        from repro.experiments.duality import duality_sweep

        expected = self._historical_rows(self.NS, self.DENSITIES, self.SEEDS)
        assert duality_sweep(self.NS, self.DENSITIES, self.SEEDS) == expected
        # ... and via the registry path (spec grid + aggregator).
        results = run_family(
            "duality",
            {"n": list(self.NS), "density": list(self.DENSITIES),
             "seeds": len(self.SEEDS)},
        )
        from repro.experiments.duality import duality_rows

        assert duality_rows(results) == expected

    def test_parallel_equals_serial(self):
        from repro.experiments.duality import duality_grid

        specs = duality_grid((6,), (0.2,), range(4))
        assert execute_scenarios(specs, jobs=2, chunksize=1) == \
            execute_scenarios(specs, jobs=1)


class TestEventualFamily:
    def test_round_trip_matches_in_process_driver(self):
        from repro.experiments.eventual import eventual_lower_bound

        bad_rounds = [0, 1, 4]
        results = run_family(
            "eventual", {"n": [6], "bad_rounds": bad_rounds, "seeds": 1}
        )
        assert len(results) == len(bad_rounds)
        for result, bad in zip(results, bad_rounds):
            report = eventual_lower_bound(6, bad_rounds=bad)
            assert result.ok
            assert result.extra("bad_rounds") == bad
            assert result.distinct_decisions == report.distinct_decisions
            assert result.extra("all_decided_own") == report.all_decided_own
            assert result.extra("confirms_lower_bound") is True


class TestResumeMidFamily:
    """Kill a family campaign after k scenarios; resume must execute
    exactly the rest and converge to the identical canonical summary."""

    PARAMS = {"n": 6, "k": 2, "seeds": 2}

    def test_resume_mid_ablation(self, tmp_path):
        # The uninterrupted reference run.
        full = family_campaign(
            "ablation", self.PARAMS, store=tmp_path / "full.jsonl"
        )
        report = full.run()
        assert report.errors == 0 and report.executed == report.total
        full.write_summary(tmp_path / "full_summary.jsonl")

        # "Kill" a second campaign after k journaled scenarios by
        # truncating its journal.
        interrupted = tmp_path / "interrupted.jsonl"
        k = 5
        lines = (tmp_path / "full.jsonl").read_text().splitlines(True)
        interrupted.write_text("".join(lines[:k]))

        resumed = family_campaign("ablation", self.PARAMS, store=interrupted)
        report = resumed.run()
        assert report.skipped == k
        assert report.executed == report.total - k
        resumed.write_summary(tmp_path / "resumed_summary.jsonl")
        assert (
            (tmp_path / "resumed_summary.jsonl").read_bytes()
            == (tmp_path / "full_summary.jsonl").read_bytes()
        )

    def test_summary_bytes_independent_of_jobs(self, tmp_path):
        c1 = family_campaign(
            "duality",
            {"n": [6], "density": [0.1, 0.3], "seeds": 3},
            store=tmp_path / "j1.jsonl",
        )
        c1.run(jobs=1)
        c1.write_summary(tmp_path / "s1.jsonl")
        c2 = family_campaign(
            "duality",
            {"n": [6], "density": [0.1, 0.3], "seeds": 3},
            store=tmp_path / "j2.jsonl",
        )
        c2.run(jobs=3)
        c2.write_summary(tmp_path / "s2.jsonl")
        assert (tmp_path / "s1.jsonl").read_bytes() == \
            (tmp_path / "s2.jsonl").read_bytes()


class TestExtrasCodec:
    def test_extras_round_trip(self):
        spec = ScenarioSpec(n=5, options=(("family", "duality"),))
        from repro.engine.executor import ScenarioResult

        result = ScenarioResult(
            spec=spec, root_components=2,
            extras=(("alpha", 3), ("gap", 1)),
        )
        assert decode_result(encode_result(result)) == result
        assert result.extra("alpha") == 3
        assert result.extra("missing", 42) == 42

    def test_empty_extras_keep_historical_bytes(self):
        from repro.engine.executor import ScenarioResult

        result = ScenarioResult(spec=ScenarioSpec(n=5), num_rounds=7)
        assert '"extras"' not in canonical_line(result)

    def test_extras_canonicalized_sorted(self):
        from repro.engine.executor import ScenarioResult

        result = ScenarioResult(
            spec=ScenarioSpec(n=5), extras=(("b", 2), ("a", 1))
        )
        assert result.extras == (("a", 1), ("b", 2))


class TestStoreDecodeWithoutPreimport:
    def test_family_journal_decodes_in_fresh_interpreter(self, tmp_path):
        """Decoding a journal with family-registered adversaries must work
        without the caller pre-importing the family module (the spec
        validator lazily loads the registry)."""
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        store = tmp_path / "j.jsonl"
        campaign = family_campaign(
            "duality", {"n": [5], "density": [0.2], "seeds": 2}, store=store
        )
        campaign.run()
        code = (
            "from repro.engine.store import ResultStore\n"
            f"results = list(ResultStore({str(store)!r}).iter_results())\n"
            "assert len(results) == 2, results\n"
            "assert all(r.spec.adversary == 'gnp' for r in results)\n"
            "print('ok')\n"
        )
        src = str(pathlib.Path(repro.__file__).parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"
