"""Store-native aggregation: kernels, grouped rollups, latency tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.aggregate import (
    AggregateTable,
    Column,
    ci95,
    decision_latency_summary,
    field_value,
    format_ci,
    group_results,
    latency_table,
    mean,
    p50,
    p95,
    rollup,
    summarize_values,
)
from repro.engine.executor import ScenarioResult
from repro.engine.scenarios import ScenarioSpec


def result(
    n=6, seed=0, noise=0.1, groups=2, last=None, st=None, values=1,
    within=True, **extras
) -> ScenarioResult:
    return ScenarioResult(
        spec=ScenarioSpec(n=n, k=groups, num_groups=groups, seed=seed,
                          noise=noise),
        last_decision_round=last,
        stabilization=st,
        distinct_decisions=values,
        within_bound=within,
        extras=tuple(sorted(extras.items())),
    )


class TestKernels:
    def test_percentiles_match_numpy(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        assert p50(values) == float(np.percentile(np.asarray(values, float), 50))
        assert p95(values) == float(np.percentile(np.asarray(values, float), 95))
        assert mean(values) == float(np.mean(values))

    def test_ci95_degenerate(self):
        assert ci95([7.0]) == (7.0, 7.0)

    def test_ci95_zero_variance_collapses_to_point(self):
        assert ci95([4.0, 4.0, 4.0]) == (4.0, 4.0)

    def test_ci95_contains_mean(self):
        lo, hi = ci95([1.0, 2.0, 3.0, 4.0])
        assert lo < 2.5 < hi

    def test_ci95_matches_normal_formula(self):
        values = [5.0, 7.0, 9.0, 13.0]
        arr = np.asarray(values)
        half = 1.96 * arr.std(ddof=1) / np.sqrt(arr.size)
        lo, hi = ci95(values)
        assert lo == pytest.approx(arr.mean() - half)
        assert hi == pytest.approx(arr.mean() + half)

    def test_format_ci(self):
        assert format_ci((6.7512, 9.0)) == "6.75..9.00"
        assert format_ci(ci95([3.0])) == "3.00..3.00"

    def test_summarize_values(self):
        s = summarize_values([4, 2, 6])
        assert s["count"] == 3 and s["max"] == 6 and s["min"] == 2
        assert s["sum"] == 12 and s["mean"] == 4.0
        assert s["p50"] == 4.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            summarize_values([])


class TestFieldValue:
    def test_resolution_order(self):
        r = result(n=9, seed=3, alpha=5)
        assert field_value(r, "n") == 9          # spec field
        assert field_value(r, "seed") == 3
        assert field_value(r, "status") == "ok"  # result metric
        assert field_value(r, "alpha") == 5      # extra
        r2 = ScenarioResult(
            spec=ScenarioSpec(n=5, options=(("density", 0.2),))
        )
        assert field_value(r2, "density") == 0.2  # spec option

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="neither"):
            field_value(result(), "no_such_field")


class TestRollup:
    def test_group_order_is_first_occurrence(self):
        results = [result(n=n, seed=s) for n in (9, 6) for s in range(2)]
        groups = group_results(results, ("n",))
        assert list(groups) == [(9,), (6,)]
        assert all(len(v) == 2 for v in groups.values())

    def test_rollup_columns(self):
        results = [
            result(n=6, seed=s, last=5 + s, thm=(s != 1)) for s in range(3)
        ]
        table = rollup(
            results,
            group_by=("n",),
            columns=(
                Column("runs", lambda r: r, "count"),
                Column("mean_last", "last_decision_round", "mean"),
                Column("violations", "thm", "count_false"),
            ),
        )
        assert isinstance(table, AggregateTable)
        assert table.headers == ("n", "runs", "mean_last", "violations")
        assert table.rows == ((6, 3, 6.0, 1),)

    def test_none_values_dropped_by_default(self):
        results = [result(last=4), result(last=None), result(last=6)]
        table = rollup(
            results, ("n",),
            (Column("mean_last", "last_decision_round", "mean"),),
        )
        assert table.rows[0][1] == 5.0

    def test_format_renders_headers(self):
        table = rollup(
            [result()], ("n",), (Column("runs", lambda r: r, "count"),)
        )
        text = table.format(title="demo")
        assert text.startswith("demo\n")
        assert "runs" in text


class TestDecisionLatencySummary:
    def test_matches_manual_numpy(self):
        lasts = [7, 9, 8, 12]
        sts = [2, 3, 2, 4]
        results = [
            result(seed=i, last=l, st=s, values=1 + (i % 2))
            for i, (l, s) in enumerate(zip(lasts, sts))
        ]
        summary = decision_latency_summary(results)
        arr = np.asarray(lasts, dtype=float)
        assert summary["runs"] == 4
        assert summary["p50_last_decide"] == float(np.percentile(arr, 50))
        assert summary["p95_last_decide"] == float(np.percentile(arr, 95))
        assert summary["ci95_last_decide"] == ci95(arr)
        assert summary["max_last_decide"] == 12
        assert summary["p50_stabilization"] == float(
            np.nanpercentile(np.asarray(sts, float), 50)
        )
        assert summary["mean_values"] == 1.5
        assert summary["bound_violations"] == 0

    def test_violation_accounting(self):
        results = [
            result(seed=0, last=None),          # undecided: 1 violation
            result(seed=1, last=9, within=False),  # over bound: 1 violation
            result(seed=2, last=7),
        ]
        assert decision_latency_summary(results)["bound_violations"] == 2

    def test_no_decisions_raises(self):
        with pytest.raises(RuntimeError, match="no run produced decisions"):
            decision_latency_summary([result(last=None)])


class TestLatencyTable:
    def test_one_row_per_ensemble_cell(self):
        results = [
            result(n=n, noise=noise, seed=s, last=5 + s, st=2)
            for n in (6, 9)
            for noise in (0.0, 0.2)
            for s in range(3)
        ]
        table = latency_table(results)
        assert len(table.rows) == 4
        assert table.headers[:3] == ("n", "num_groups", "noise")
        # Grid order in, grid order out.
        assert [row[0] for row in table.rows] == [6, 6, 9, 9]

    def test_ci95_column(self):
        results = [result(seed=s, last=5 + s, st=2) for s in range(3)]
        table = latency_table(results)
        col = table.headers.index("ci95_decide")
        assert table.rows[0][col] == format_ci(ci95([5.0, 6.0, 7.0]))

    def test_ci95_column_degenerate_groups(self):
        # A one-sample ensemble and a zero-variance ensemble both render
        # a point interval instead of crashing on ddof=1.
        singleton = latency_table([result(seed=0, last=9, st=2)])
        col = singleton.headers.index("ci95_decide")
        assert singleton.rows[0][col] == "9.00..9.00"
        flat = latency_table(
            [result(seed=s, last=6, st=2) for s in range(4)]
        )
        assert flat.rows[0][col] == "6.00..6.00"

    def test_matches_latency_distribution_rows(self):
        """The store-native table equals the typed LatencyDistribution
        rows the analysis layer builds — same aggregation, one home."""
        from repro.analysis.distributions import latency_distribution

        dist = latency_distribution(6, 2, 0.2, seeds=range(4))
        results = [
            r for r in _run_latency_ensemble(6, 2, 0.2, range(4))
        ]
        table = latency_table(results)
        (row,) = table.rows
        assert row == (
            dist.n,
            dist.num_groups,
            dist.noise,
            dist.runs,
            dist.p50_last_decide,
            dist.p95_last_decide,
            format_ci(dist.ci95_last_decide),
            dist.max_last_decide,
            dist.p50_stabilization,
            round(dist.mean_values, 2),
            dist.bound_violations,
        )


def _run_latency_ensemble(n, groups, noise, seeds):
    from repro.analysis.distributions import latency_specs
    from repro.engine.executor import execute_scenarios, require_ok

    return require_ok(
        execute_scenarios(latency_specs(n, groups, noise, seeds))
    )
