"""Distributed batch execution: endpoint parsing, deterministic
shard-merge, and the headline acceptance property — a campaign run
through real ``repro worker`` subprocesses produces a journal and
summary **byte-identical** to a serial single-host run, whatever the
worker count, completion order, or mid-run worker loss."""

from __future__ import annotations

import random
import subprocess
import sys

import pytest

from daemon_harness import repro_env
from worker_harness import worker_fleet

from repro.engine import faults as _faults
from repro.engine.campaign import Campaign
from repro.engine.faults import FaultPlan
from repro.engine.remote import (
    RemoteWorkerError,
    ShardMerger,
    WorkerEndpoint,
    absorb_shards,
    execute_remote,
    parse_workers,
    shard_paths,
)
from repro.engine.scenarios import ScenarioGrid
from repro.engine.store import ResultStore, journal_line
from repro.engine.telemetry import Recorder


def small_grid() -> ScenarioGrid:
    return ScenarioGrid(n=[5, 6], k=2, num_groups=[1, 2], seed=range(3),
                        noise=0.1)


# ----------------------------------------------------------------------
# Endpoint parsing — the transport seam.
# ----------------------------------------------------------------------


class TestParseWorkers:
    def test_dial_endpoint_with_default_host(self):
        ep = WorkerEndpoint.parse("9101")
        assert (ep.kind, ep.host, ep.port) == ("dial", "127.0.0.1", 9101)
        assert ep.spec == "127.0.0.1:9101"

    def test_dial_endpoint_with_host(self):
        ep = WorkerEndpoint.parse("10.0.0.7:9101")
        assert (ep.kind, ep.host, ep.port) == ("dial", "10.0.0.7", 9101)

    def test_accept_endpoint(self):
        ep = WorkerEndpoint.parse("listen:9101")
        assert (ep.kind, ep.host, ep.port) == ("accept", "127.0.0.1", 9101)
        assert ep.spec == "listen:127.0.0.1:9101"
        ep = WorkerEndpoint.parse("listen:0.0.0.0:9101")
        assert (ep.kind, ep.host) == ("accept", "0.0.0.0")

    @pytest.mark.parametrize("bad", ["", "host:port", "1:2:x", "a:70000"])
    def test_invalid_endpoint_raises(self, bad):
        with pytest.raises(ValueError):
            WorkerEndpoint.parse(bad)

    def test_comma_separated_string(self):
        eps = parse_workers("h1:1, h2:2 ,")
        assert [ep.spec for ep in eps] == ["h1:1", "h2:2"]

    def test_endpoint_objects_pass_through(self):
        ep = WorkerEndpoint(kind="accept", host="127.0.0.1", port=0)
        assert parse_workers([ep, "h:3"])[0] is ep

    def test_none_is_empty(self):
        assert parse_workers(None) == []


# ----------------------------------------------------------------------
# ShardMerger — completion order in, plan order out.
# ----------------------------------------------------------------------


class TestShardMerger:
    def test_releases_in_plan_order_whatever_the_arrival_order(self):
        order = [4, 0, 7, 2, 9, 1]
        for shuffle_seed in range(20):
            arrivals = list(order)
            random.Random(shuffle_seed).shuffle(arrivals)
            merger = ShardMerger(order)
            released = []
            for idx in arrivals:
                released.extend(merger.add(idx, f"r{idx}"))
            assert [idx for idx, _ in released] == order
            assert [res for _, res in released] == [f"r{i}" for i in order]
            assert merger.released == merger.total == len(order)
            assert merger.pending == 0

    def test_contiguous_prefix_releases_eagerly(self):
        merger = ShardMerger([5, 3, 8])
        assert merger.add(3, "b") == []
        assert merger.add(5, "a") == [(5, "a"), (3, "b")]
        assert merger.pending == 0

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError):
            ShardMerger([1, 2]).add(99, "x")

    def test_duplicate_arrival_raises(self):
        merger = ShardMerger([1, 2])
        merger.add(2, "x")
        with pytest.raises(ValueError):
            merger.add(2, "again")
        merger.add(1, "y")  # releases both
        with pytest.raises(ValueError):
            merger.add(1, "released dup")

    def test_duplicate_order_index_raises(self):
        with pytest.raises(ValueError):
            ShardMerger([1, 1])

    def test_drain_flushes_held_results_in_position_order(self):
        merger = ShardMerger([4, 0, 7])
        merger.add(7, "c")
        merger.add(0, "b")  # 4 never arrives — gap stays pending
        assert merger.drain() == [(0, "b"), (7, "c")]
        assert merger.pending == 0


# ----------------------------------------------------------------------
# Coordinator error paths that need no subprocess.
# ----------------------------------------------------------------------


class TestCoordinatorErrors:
    def test_unreachable_worker_raises_remote_error(self):
        specs = small_grid().expand()
        with pytest.raises(RemoteWorkerError):
            execute_remote(
                specs, "127.0.0.1:1", backend="auto", connect_timeout=0.5
            )

    def test_no_endpoints_raises(self):
        with pytest.raises(ValueError):
            execute_remote(small_grid().expand(), [])


# ----------------------------------------------------------------------
# The headline property: byte-identical journals and summaries.
# ----------------------------------------------------------------------


@pytest.mark.daemon
class TestRemoteByteIdentity:
    def test_journal_and_summary_bytes_invariant_under_fleet_size(
        self, tmp_path
    ):
        grid = small_grid()
        serial = Campaign(grid, store=tmp_path / "serial.jsonl")
        report = serial.run(jobs=1, backend="auto")
        assert report.ok == report.total
        serial.write_summary(tmp_path / "serial.summary.jsonl")
        journal_ref = (tmp_path / "serial.jsonl").read_bytes()
        summary_ref = (tmp_path / "serial.summary.jsonl").read_bytes()

        with worker_fleet(tmp_path, count=4) as fleet:
            for count in (1, 2, 4):
                store = tmp_path / f"remote{count}.jsonl"
                campaign = Campaign(grid, store=store)
                report = campaign.run(
                    backend="auto", workers=fleet.endpoints[:count]
                )
                assert report.ok == report.total
                campaign.write_summary(tmp_path / f"remote{count}.summary")
                assert store.read_bytes() == journal_ref, (
                    f"journal bytes diverged with {count} workers"
                )
                assert (
                    tmp_path / f"remote{count}.summary"
                ).read_bytes() == summary_ref, (
                    f"summary bytes diverged with {count} workers"
                )
                # Clean completion leaves no orphaned shard files.
                assert shard_paths(store) == []
            assert fleet.stop() == [0, 0, 0, 0]

    def test_remote_telemetry_counts_every_record_once(self, tmp_path):
        grid = small_grid()
        with worker_fleet(tmp_path, count=2) as fleet:
            rec = Recorder()
            campaign = Campaign(grid, store=tmp_path / "j.jsonl")
            campaign.run(
                backend="auto", workers=fleet.endpoints, recorder=rec
            )
            snap = rec.snapshot()
            merged = snap["deterministic"]["counters"][
                "remote.shard_records_merged"
            ]
            assert merged == len(grid.expand())
            info = snap["volatile"]["info"]["remote.workers"]
            assert len(info) == 2
            assert sum(w["units"] for w in info) >= 1


@pytest.mark.daemon
class TestRemoteWorkerLoss:
    def test_seeded_worker_kill_reconverges_to_identical_bytes(
        self, tmp_path
    ):
        grid = small_grid()
        ids = [spec.scenario_id for spec in grid.expand()]
        # Pick a seed whose kill plan targets exactly one scenario, so
        # the drill is a single deterministic mid-run worker death.
        seed = next(
            s for s in range(1000)
            if len(FaultPlan(seed=s, kill=0.1).victims("kill", ids)) == 1
        )

        serial = Campaign(grid, store=tmp_path / "serial.jsonl")
        assert serial.run(jobs=1, backend="auto").ok == len(ids)
        journal_ref = (tmp_path / "serial.jsonl").read_bytes()

        ledger = tmp_path / "kill.ledger"
        try:
            FaultPlan.from_seed(
                seed, kill=0.1, ledger=str(ledger)
            ).install()
            with worker_fleet(tmp_path, count=2) as fleet:
                store = tmp_path / "remote.jsonl"
                campaign = Campaign(grid, store=store)
                report = campaign.run(
                    backend="auto", workers=fleet.endpoints, max_retries=3
                )
                assert report.ok == len(ids)
                assert store.read_bytes() == journal_ref
        finally:
            _faults.clear()
        fired = ledger.read_text().splitlines()
        assert len(fired) == 1 and fired[0].startswith("kill:")


# ----------------------------------------------------------------------
# Accept endpoints: the coordinator binds, the worker dials in.
# ----------------------------------------------------------------------


@pytest.mark.daemon
class TestAcceptEndpoint:
    def test_connect_back_worker_is_a_drop_in(self, tmp_path):
        specs = small_grid().expand()
        serial = Campaign(small_grid(), store=tmp_path / "serial.jsonl")
        serial.run(jobs=1, backend="auto")
        ref_lines = (
            (tmp_path / "serial.jsonl").read_text().splitlines()
        )

        ep = WorkerEndpoint.parse("listen:127.0.0.1:0")
        ep.prepare()  # resolves port 0 before the worker spawns
        assert ep.port != 0
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"127.0.0.1:{ep.port}",
            ],
            env=repro_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            lines = []
            results = execute_remote(
                specs, [ep], backend="auto",
                on_result=lambda r: lines.append(journal_line(r)),
            )
            assert [r.scenario_id for r in results] == [
                s.scenario_id for s in specs
            ]
            assert lines == ref_lines
            assert proc.wait(timeout=30) == 0  # one session, clean exit
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


# ----------------------------------------------------------------------
# Crash-resume: orphaned worker shards fold back into the journal.
# ----------------------------------------------------------------------


class TestAbsorbShards:
    def test_orphaned_shard_records_absorb_and_resume(self, tmp_path):
        grid = small_grid()
        full = Campaign(grid, store=tmp_path / "full.jsonl")
        full.run(jobs=1, backend="auto")
        lines = (tmp_path / "full.jsonl").read_text().splitlines()
        assert len(lines) == 12

        # Simulate a coordinator crash: the journal has the first half,
        # a worker shard holds the rest (shard lines use the journal
        # codec, so real shard files round-trip through this path).
        crashed = tmp_path / "crashed.jsonl"
        crashed.write_text("".join(line + "\n" for line in lines[:6]))
        shard = tmp_path / "crashed.jsonl.shard-w0.jsonl"
        shard.write_text("".join(line + "\n" for line in lines[6:]))

        store = ResultStore(crashed)
        rec = Recorder()
        assert absorb_shards(store, recorder=rec) == 6
        assert not shard.exists()
        snap = rec.snapshot()
        assert snap["volatile"]["counters"][
            "remote.shard_records_absorbed"
        ] == 6

        campaign = Campaign(grid, store=crashed)
        status = campaign.status()
        assert status.missing == 0
        # Absorbing again is a no-op.
        assert absorb_shards(store) == 0

    def test_terminal_journal_records_win_over_shards(self, tmp_path):
        grid = small_grid()
        full = Campaign(grid, store=tmp_path / "full.jsonl")
        full.run(jobs=1, backend="auto")
        lines = (tmp_path / "full.jsonl").read_text().splitlines()

        target = tmp_path / "j.jsonl"
        target.write_text("".join(line + "\n" for line in lines))
        shard = tmp_path / "j.jsonl.shard-w1.jsonl"
        # Duplicate + torn tail: neither may dirty the journal.
        shard.write_text(lines[0] + "\n" + '{"torn": ')
        store = ResultStore(target)
        assert absorb_shards(store) == 0
        assert not shard.exists()
        assert target.read_text().splitlines() == lines
