"""JSONL result store: codec roundtrips, resume-by-hash, canonical
summaries, corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.engine.executor import ScenarioResult, execute_scenario
from repro.engine.scenarios import ScenarioSpec
from repro.engine.store import (
    ResultStore,
    SchemaVersionError,
    canonical_line,
    decode_result,
    encode_result,
)


def _ok_result(seed: int = 0) -> ScenarioResult:
    return execute_scenario(ScenarioSpec(n=5, k=2, num_groups=2, seed=seed))


class TestCodec:
    def test_roundtrip_ok_result(self):
        result = _ok_result()
        again = decode_result(encode_result(result))
        assert again == result

    def test_roundtrip_failure_result(self):
        result = ScenarioResult.failure(
            ScenarioSpec(n=5), "ValueError: boom"
        )
        again = decode_result(encode_result(result))
        assert again == result
        assert again.status == "error" and again.error == "ValueError: boom"

    def test_canonical_line_is_deterministic(self):
        result = _ok_result()
        assert canonical_line(result) == canonical_line(result)
        record = json.loads(canonical_line(result))
        assert record["id"] == result.scenario_id
        assert record["schema"] == 1

    def test_newer_schema_rejected(self):
        record = encode_result(_ok_result())
        record["schema"] = 99
        with pytest.raises(SchemaVersionError, match="schema 99"):
            decode_result(record)

    def test_newer_schema_fails_loudly_through_store(self, tmp_path):
        # Forward-incompatible journals must not be treated as corrupt
        # lines — that would silently re-execute the whole campaign.
        path = tmp_path / "journal.jsonl"
        store = ResultStore(path)
        store.append(_ok_result())
        record = encode_result(_ok_result(seed=1))
        record["schema"] = 2
        with path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
        with pytest.raises(SchemaVersionError):
            ResultStore(path).load()


class TestResultStore:
    def test_memory_store(self):
        store = ResultStore(None)
        result = _ok_result()
        store.append(result)
        assert store.load() == {result.scenario_id: result}

    def test_file_append_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "sub" / "journal.jsonl")
        results = [_ok_result(seed) for seed in range(3)]
        for result in results:
            store.append(result)
        loaded = ResultStore(tmp_path / "sub" / "journal.jsonl").load()
        assert loaded == {r.scenario_id: r for r in results}

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        store = ResultStore(path)
        spec = ScenarioSpec(n=5)
        store.append(ScenarioResult.failure(spec, "slow", status="timeout"))
        retried = execute_scenario(spec)
        store.append(retried)
        assert store.load()[spec.scenario_id] == retried

    def test_timeouts_are_retriable(self, tmp_path):
        store = ResultStore(tmp_path / "journal.jsonl")
        ok_spec = ScenarioSpec(n=5, seed=0)
        err_spec = ScenarioSpec(n=5, seed=1)
        to_spec = ScenarioSpec(n=5, seed=2)
        fresh_spec = ScenarioSpec(n=5, seed=3)
        store.append(execute_scenario(ok_spec))
        store.append(ScenarioResult.failure(err_spec, "boom"))
        store.append(
            ScenarioResult.failure(to_spec, "slow", status="timeout")
        )
        # ok + deterministic error are terminal; timeout is not.
        assert store.completed_ids() == {
            ok_spec.scenario_id,
            err_spec.scenario_id,
        }
        missing = store.missing([ok_spec, err_spec, to_spec, fresh_spec])
        assert missing == [to_spec, fresh_spec]

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        store = ResultStore(path)
        result = _ok_result()
        store.append(result)
        with path.open("a") as fh:
            fh.write('{"truncated: ')  # killed mid-write
        again = ResultStore(path)
        assert again.load() == {result.scenario_id: result}

    def test_foreign_valid_json_lines_skipped(self, tmp_path):
        # Valid JSON whose spec dict is missing ScenarioSpec fields
        # (hand-edited journal, foreign tool) is tolerated like any
        # corrupt line: resume re-runs that scenario.
        path = tmp_path / "journal.jsonl"
        store = ResultStore(path)
        result = _ok_result()
        store.append(result)
        with path.open("a") as fh:
            fh.write('{"spec": {}, "status": "ok"}\n')
            fh.write('{"spec": "hello", "status": "ok"}\n')
            fh.write('{"spec": {"n": 4}, "metrics": 5}\n')
            fh.write('{"not": "a record"}\n')
            fh.write('null\n')
            fh.write('[1, 2]\n')
            fh.write('"stray string"\n')
        again = ResultStore(path)
        assert again.load() == {result.scenario_id: result}

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "nope.jsonl")
        assert store.load() == {}
        assert store.completed_ids() == set()

    def test_write_summary_grid_order_and_skips_missing(self, tmp_path):
        store = ResultStore(tmp_path / "journal.jsonl")
        specs = [ScenarioSpec(n=5, seed=s) for s in range(4)]
        # Journal out of order, one missing.
        for seed in (2, 0, 1):
            store.append(execute_scenario(specs[seed]))
        written = store.write_summary(tmp_path / "summary.jsonl", specs)
        assert written == 3
        lines = (tmp_path / "summary.jsonl").read_text().splitlines()
        ids = [json.loads(line)["id"] for line in lines]
        assert ids == [specs[0].scenario_id, specs[1].scenario_id,
                       specs[2].scenario_id]
