"""Tests for analysis: properties, stats, reporting."""

from __future__ import annotations

import pytest

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.static import StaticAdversary
from repro.analysis.properties import (
    check_agreement_properties,
    check_k_agreement,
    check_termination,
    check_validity,
)
from repro.analysis.reporting import format_table
from repro.analysis.stats import (
    decision_stats,
    message_stats,
    polynomial_bit_bound,
)
from repro.core.algorithm import make_processes
from repro.graphs.digraph import DiGraph
from repro.rounds.process import DecisionRecord
from repro.rounds.run import Run, RoundRecord
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def synthetic_run(n=3, decisions=None, values=None) -> Run:
    run = Run(n, values or list(range(n)))
    g = DiGraph.complete(range(n))
    run.append_round(RoundRecord(1, g, decisions=decisions or []))
    return run


class TestProperties:
    def test_k_agreement_holds(self):
        run = synthetic_run(
            decisions=[DecisionRecord(0, 1, 0), DecisionRecord(1, 1, 0)]
        )
        assert check_k_agreement(run, 1).holds

    def test_k_agreement_violated(self):
        run = synthetic_run(
            decisions=[DecisionRecord(0, 1, 0), DecisionRecord(1, 1, 1)]
        )
        check = check_k_agreement(run, 1)
        assert not check.holds
        assert "2 distinct" in check.detail

    def test_validity(self):
        good = synthetic_run(decisions=[DecisionRecord(0, 1, 2)])
        assert check_validity(good).holds
        bad = synthetic_run(decisions=[DecisionRecord(0, 1, 99)])
        assert not check_validity(bad).holds

    def test_termination(self):
        run = synthetic_run(decisions=[DecisionRecord(i, 1, 0) for i in range(3)])
        assert check_termination(run).holds
        partial = synthetic_run(decisions=[DecisionRecord(0, 1, 0)])
        check = check_termination(partial)
        assert not check.holds
        assert "[1, 2]" in check.detail

    def test_combined_report(self):
        run = synthetic_run(decisions=[DecisionRecord(i, 1, 0) for i in range(3)])
        report = check_agreement_properties(run, 2)
        assert report.all_hold
        assert report.num_decision_values == 1
        assert "OK" in report.summary()

    def test_report_failure_summary(self):
        run = synthetic_run()
        report = check_agreement_properties(run, 1)
        assert not report.all_hold
        assert "FAIL" in report.summary()


class TestDecisionStats:
    def test_full_run(self):
        adv = GroupedSourceAdversary(6, num_groups=2, seed=0, noise=0.2)
        run = RoundSimulator(
            make_processes(6), adv, SimulationConfig(max_rounds=50)
        ).run()
        stats = decision_stats(run)
        assert stats.num_decided == 6
        assert stats.first_decision_round <= stats.last_decision_round
        assert stats.stabilization is not None
        assert stats.lemma11_bound == stats.stabilization + 2 * 6 - 1
        assert stats.within_bound

    def test_no_decisions(self):
        run = synthetic_run()
        stats = decision_stats(run)
        assert stats.num_decided == 0
        assert stats.first_decision_round is None
        assert stats.within_bound is None


class TestMessageStats:
    def test_requires_recorded_messages(self):
        run = synthetic_run()
        with pytest.raises(ValueError, match="record_messages"):
            message_stats(run)

    def test_stats_computed(self):
        adv = GroupedSourceAdversary(5, num_groups=1, seed=0)
        run = RoundSimulator(
            make_processes(5),
            adv,
            SimulationConfig(max_rounds=12, record_messages=True),
        ).run()
        stats = message_stats(run)
        assert stats.num_messages == 5 * run.num_rounds
        assert 0 < stats.mean_bits <= stats.max_bits
        assert stats.total_bits >= stats.max_bits

    def test_polynomial_bound_dominates(self):
        # every observed message fits under the loose O(n² log nr) ceiling
        n = 6
        adv = GroupedSourceAdversary(n, num_groups=2, seed=1, noise=0.3)
        run = RoundSimulator(
            make_processes(n),
            adv,
            SimulationConfig(max_rounds=30, record_messages=True),
        ).run()
        stats = message_stats(run)
        assert stats.max_bits < polynomial_bit_bound(n, run.num_rounds)


class TestReporting:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_bool_and_float_formatting(self):
        out = format_table(["v"], [[True], [False], [0.123456]])
        assert "yes" in out and "no" in out and "0.123" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_docstring_example(self):
        out = format_table(["n", "k"], [[6, 3], [12, 4]], title="demo")
        assert out.splitlines()[0] == "demo"
        assert "12" in out
