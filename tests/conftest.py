"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.digraph import DiGraph


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def diamond() -> DiGraph:
    """0 -> 1 -> 3, 0 -> 2 -> 3 — a DAG with one root and one sink."""
    return DiGraph(edges=[(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def two_cycles() -> DiGraph:
    """Two disjoint 3-cycles: {0,1,2} and {3,4,5}."""
    return DiGraph(
        edges=[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    )


@pytest.fixture
def figure1_stable() -> DiGraph:
    """The Figure 1 stable skeleton (with self-loops)."""
    from repro.experiments.figure1 import STABLE_EDGES, FIGURE1_N

    g = DiGraph(nodes=range(FIGURE1_N), edges=STABLE_EDGES)
    return g.with_self_loops()


def random_digraph(
    rng: np.random.Generator, n: int, p: float, self_loops: bool = False
) -> DiGraph:
    """Helper used by several oracle-comparison tests."""
    from repro.graphs.generators import gnp_random

    return gnp_random(n, p, rng, self_loops=self_loops)


def to_networkx(graph: DiGraph):
    """Convert to a networkx.DiGraph for oracle cross-validation."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from(graph.edges())
    return g


# ----------------------------------------------------------------------
# Per-test timeout for @pytest.mark.daemon (subprocess-based service
# tests): a hung daemon must fail its test fast, not wedge the suite.
# Implemented with SIGALRM (no plugin dependency); the marker accepts
# an override: @pytest.mark.daemon(timeout=300).
# ----------------------------------------------------------------------
DAEMON_TEST_TIMEOUT = 180.0


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    import signal

    marker = item.get_closest_marker("daemon")
    if marker is None or not hasattr(signal, "SIGALRM"):
        return (yield)
    seconds = float(marker.kwargs.get("timeout", DAEMON_TEST_TIMEOUT))

    def _expired(signum, frame):  # noqa: ARG001 — signal API
        raise TimeoutError(
            f"daemon test exceeded its {seconds:.0f}s timeout "
            "(hung daemon or stuck poll loop)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
