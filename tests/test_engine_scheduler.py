"""The batch scheduler: planning, determinism, progress reporting.

Execution equivalence (compaction, refill, jobs/partition invariance)
lives in ``tests/test_batched_equivalence.py``; this file pins the
*planning* layer — global grouping, round-budget buckets, memory
envelopes, deterministic plans — and the plan-derived progress reporter.
"""

from __future__ import annotations

import io

import pytest

from repro.engine.executor import ScenarioResult
from repro.engine.scenarios import ScenarioSpec
from repro.engine.scheduler import (
    BATCH_DEPTH,
    BatchPlan,
    ProgressReporter,
    plan_batches,
    round_bucket,
)
from repro.rounds.fastpath import default_batch_size


def _grouped(n, seed, noise=0.2, max_rounds=None):
    return ScenarioSpec(
        n=n, k=2, num_groups=2, seed=seed, noise=noise, max_rounds=max_rounds
    )


UNSUPPORTED = ScenarioSpec(
    n=7, k=2, adversary="crash", algorithm="floodmin", options=(("f", 1),)
)


class TestRoundBucket:
    def test_power_of_two_ceiling(self):
        assert round_bucket(1) == 1
        assert round_bucket(2) == 2
        assert round_bucket(3) == 4
        assert round_bucket(56) == 64
        assert round_bucket(64) == 64
        assert round_bucket(500) == 512

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            round_bucket(0)


class TestPlanBatches:
    def test_interleaved_grid_groups_globally(self):
        # n alternates spec by spec: the historical contiguous-segment
        # packing would have produced 8 one-lane batches; the planner
        # packs one batch per n.
        specs = []
        for seed in range(4):
            specs.append(_grouped(6, seed))
            specs.append(_grouped(8, seed))
        plan = plan_batches(list(enumerate(specs)))
        assert len(plan.batches) == 2
        assert sorted(b.n for b in plan.batches) == [6, 8]
        assert not plan.singles
        for batch in plan.batches:
            assert [spec.n for _, spec in batch.items] == [batch.n] * 4
        # Every work-list index appears exactly once.
        indices = sorted(
            idx for b in plan.batches for idx, _ in b.items
        )
        assert indices == list(range(len(specs)))

    def test_incompatible_specs_become_singles_in_order(self):
        specs = [_grouped(6, 0), UNSUPPORTED, _grouped(6, 1), UNSUPPORTED]
        plan = plan_batches(list(enumerate(specs)))
        assert len(plan.batches) == 1
        assert [idx for idx, _ in plan.singles] == [1, 3]
        assert plan.total == 4
        assert plan.batched_lanes == 2

    def test_round_budget_buckets_split_groups(self):
        specs = [
            _grouped(6, 0, max_rounds=10),
            _grouped(6, 1, max_rounds=500),
            _grouped(6, 2, max_rounds=12),
        ]
        plan = plan_batches(list(enumerate(specs)))
        buckets = sorted(b.bucket for b in plan.batches)
        # 10 and 12 share the 16-round bucket; 500 lands alone in 512.
        assert buckets == [16, 512]
        by_bucket = {b.bucket: b for b in plan.batches}
        assert by_bucket[16].lanes == 2
        # Each width is computed from its own group's largest budget,
        # so the 500-round lane cannot shrink the short lanes' batches.
        assert by_bucket[512].width == default_batch_size(6, 500)
        assert by_bucket[16].width == default_batch_size(6, 12)

    def test_batches_capped_at_depth_times_width(self):
        n, rounds = 6, 6 * 6 + 20
        width = default_batch_size(n, rounds)
        total = width * BATCH_DEPTH + 3
        specs = [_grouped(n, seed) for seed in range(total)]
        plan = plan_batches(list(enumerate(specs)))
        assert [b.lanes for b in plan.batches] == [width * BATCH_DEPTH, 3]
        assert all(b.width == width for b in plan.batches)

    def test_jobs_split_spreads_one_group_across_workers(self):
        # A homogeneous campaign must not serialize onto one pool
        # worker: with jobs > 1 a large group is cut into at least
        # ~jobs batches (never thinner than MIN_SPLIT_LANES lanes),
        # and execution results stay a pure function of the spec.
        from repro.engine.executor import execute_scenarios
        from repro.engine.store import journal_line

        specs = [_grouped(6, seed) for seed in range(24)]
        items = list(enumerate(specs))
        assert len(plan_batches(items, jobs=1).batches) == 1
        # jobs=4 wants 6-lane cuts, but the MIN_SPLIT_LANES floor keeps
        # batches at >= 8 lanes (kernel amortization beats one idle
        # worker at this size).
        assert [b.lanes for b in plan_batches(items, jobs=4).batches] == [
            8, 8, 8,
        ]
        # Tiny groups are not shredded below MIN_SPLIT_LANES.
        small = list(enumerate(specs[:10]))
        assert [b.lanes for b in plan_batches(small, jobs=8).batches] == [
            8, 2,
        ]
        serial = execute_scenarios(specs, backend="batched")
        split = execute_scenarios(specs, jobs=4, backend="batched")
        assert [journal_line(r) for r in split] == [
            journal_line(r) for r in serial
        ]

    def test_batch_memory_envelope_shrinks_width(self):
        specs = [_grouped(6, seed) for seed in range(5)]
        tiny = plan_batches(list(enumerate(specs)), batch_memory=1)
        assert all(b.width == 1 for b in tiny.batches)
        assert [b.lanes for b in tiny.batches] == [BATCH_DEPTH, 1]

    def test_plan_is_deterministic(self):
        specs = [_grouped(n, seed) for seed in range(3) for n in (5, 6, 7)]
        specs.append(UNSUPPORTED)
        a = plan_batches(list(enumerate(specs)))
        b = plan_batches(list(enumerate(specs)))
        assert a == b
        assert isinstance(a, BatchPlan)
        assert "batches" in a.describe() and "singles" in a.describe()


class TestProgressReporter:
    @staticmethod
    def _results(specs):
        return [ScenarioResult(spec=spec) for spec in specs]

    def test_emits_rate_batches_and_eta(self):
        specs = [_grouped(6, seed) for seed in range(4)]
        plan = plan_batches(list(enumerate(specs)))
        stream = io.StringIO()
        ticks = iter(x * 0.5 for x in range(100))
        reporter = ProgressReporter(
            total=len(specs),
            label="latency",
            plan=plan,
            stream=stream,
            interval=0.0,
            clock=lambda: next(ticks),
        )
        for result in self._results(specs):
            reporter.update(result)
        lines = stream.getvalue().splitlines()
        assert len(lines) == len(specs)
        assert lines[0].startswith("[latency] 1/4 scenarios (25%)")
        assert "/s" in lines[0]
        assert "eta" in lines[0]
        # The final line reports the completed plan and drops the ETA.
        assert lines[-1].startswith("[latency] 4/4 scenarios (100%)")
        assert f"batch {len(plan.batches)}/{len(plan.batches)}" in lines[-1]
        assert "eta" not in lines[-1]

    def test_throttles_to_interval_but_always_emits_final(self):
        specs = [_grouped(6, seed) for seed in range(10)]
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=len(specs),
            stream=stream,
            interval=1000.0,
            clock=lambda: 0.0,
        )
        for result in self._results(specs):
            reporter.update(result)
        lines = stream.getvalue().splitlines()
        # One initial line (first update is always due) + the final one.
        assert len(lines) == 2
        assert lines[-1].startswith("[campaign] 10/10")

    def test_without_plan_no_batch_column(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, stream=stream, clock=lambda: 0.0)
        reporter.update(self._results([_grouped(6, 0)])[0])
        assert "batch" not in stream.getvalue()


class TestCampaignProgress:
    def test_campaign_run_reports_progress_to_stream(self, tmp_path):
        from repro.engine.registry import family_campaign

        stream = io.StringIO()
        campaign = family_campaign(
            "latency",
            {"n": [5], "seeds": 2, "noise": (0.1,)},
            store=tmp_path / "j.jsonl",
        )
        campaign.run(progress=stream)
        out = stream.getvalue()
        assert "[latency]" in out
        assert "scenarios" in out and "/s" in out
        assert "batch" in out  # derived from the batch plan (auto backend)

    def test_progress_off_by_default_and_resume_silent(self, tmp_path):
        from repro.engine.registry import family_campaign

        stream = io.StringIO()
        campaign = family_campaign(
            "latency",
            {"n": [5], "seeds": 1, "noise": (0.1,)},
            store=tmp_path / "j.jsonl",
        )
        campaign.run()  # no progress arg: nothing anywhere but the store
        # A fully-resumed campaign has nothing to report even with
        # progress on (zero-scenario runs must not print a line).
        campaign.run(progress=stream)
        assert stream.getvalue() == ""


class TestCrossWidthPlanning:
    """pack_widths grouping, the padded envelope, and batch splitting."""

    def test_pack_widths_merges_one_group_per_bucket(self):
        # n 4..7 share the 64-round bucket: unpacked plans one tensor
        # program per n, packed collapses them into a single program at
        # the widest member's width.
        specs = [_grouped(n, seed) for n in (4, 5, 6, 7) for seed in range(2)]
        items = list(enumerate(specs))
        unpacked = plan_batches(items)
        assert sorted(b.n for b in unpacked.batches) == [4, 5, 6, 7]
        packed = plan_batches(items, pack_widths=True)
        assert len(packed.batches) == 1
        (batch,) = packed.batches
        assert batch.n == 7
        assert batch.lanes == len(specs)
        assert sorted(idx for idx, _ in batch.items) == list(
            range(len(specs))
        )

    def test_pack_widths_respects_round_buckets(self):
        # n=4 resolves to 44 rounds (bucket 64), n=8 to 68 (bucket 128):
        # packing never merges across round budgets.
        specs = [_grouped(4, 0), _grouped(8, 0)]
        packed = plan_batches(list(enumerate(specs)), pack_widths=True)
        assert sorted(b.bucket for b in packed.batches) == [64, 128]
        assert sorted(b.n for b in packed.batches) == [4, 8]

    def test_pad_counters_live_on_the_deterministic_plane(self):
        from repro.engine.telemetry import Recorder

        specs = [_grouped(4, 0), _grouped(4, 1), _grouped(7, 0)]
        rec = Recorder()
        plan_batches(list(enumerate(specs)), pack_widths=True, recorder=rec)
        det = rec.snapshot()["deterministic"]["counters"]
        # Two n=4 lanes padded up to width 7.
        assert det["scheduler.padded_lane_width"] == 2 * 7
        assert det["scheduler.wasted_pad_cells"] == 2 * (49 - 16)
        # Without packing the counters are absent, not zero.
        rec2 = Recorder()
        plan_batches(list(enumerate(specs)), recorder=rec2)
        det2 = rec2.snapshot()["deterministic"]["counters"]
        assert "scheduler.padded_lane_width" not in det2
        assert "scheduler.wasted_pad_cells" not in det2

    def test_envelope_sized_from_padded_width(self):
        # The estimate_batch_bytes overflow regression: under packing the
        # --batch-memory envelope must bound the *padded* tensor program.
        # Sizing width from a narrow member's nominal n would overflow
        # the budget once that lane runs padded to the widest member.
        from repro.engine.scheduler import estimate_batch_bytes
        from repro.rounds.fastpath import lane_bytes

        rmax = _grouped(7, 0).resolved_max_rounds()  # 62
        budget = 3 * lane_bytes(7, rmax)
        specs = [_grouped(4, s) for s in range(6)] + [_grouped(7, 0)]
        packed = plan_batches(
            list(enumerate(specs)), batch_memory=budget, pack_widths=True
        )
        (batch,) = packed.batches
        assert batch.n == 7
        assert batch.width == default_batch_size(7, rmax, budget_bytes=budget)
        assert estimate_batch_bytes(batch.n, rmax, batch.width) <= budget
        # The buggy sizing (nominal n=4) would have claimed more width
        # than the padded program can afford.
        nominal = default_batch_size(
            4, _grouped(4, 0).resolved_max_rounds(), budget_bytes=budget
        )
        assert nominal > batch.width

    def test_estimate_batch_bytes_scales_with_lanes(self):
        from repro.engine.scheduler import estimate_batch_bytes
        from repro.rounds.fastpath import lane_bytes

        assert estimate_batch_bytes(7, 62) == lane_bytes(7, 62)
        assert estimate_batch_bytes(7, 62, lanes=3) == 3 * lane_bytes(7, 62)
        with pytest.raises(ValueError):
            estimate_batch_bytes(7, 62, lanes=0)

    def test_split_planned_deterministic_partition(self):
        from repro.engine.scheduler import (
            MIN_SPLIT_LANES,
            can_split,
            split_planned,
        )

        specs = [_grouped(6, s) for s in range(2 * MIN_SPLIT_LANES)]
        (batch,) = plan_batches(list(enumerate(specs))).batches
        assert can_split(batch)
        first, second = split_planned(batch)
        assert first.items + second.items == batch.items
        assert first.lanes == batch.lanes // 2
        for half in (first, second):
            assert (half.n, half.bucket, half.width) == (
                batch.n, batch.bucket, batch.width,
            )
        # Pure function of the batch: same cut every time.
        assert split_planned(batch) == (first, second)
        # Below the threshold: can_split says no and split_planned raises.
        assert not can_split(first)
        with pytest.raises(ValueError):
            split_planned(first)

    def test_progress_reporter_split_batches_not_double_counted(self):
        # Stolen halves report the same scenario ids as the parent batch:
        # the batch column must complete exactly once and the scenario
        # total must not inflate.
        from repro.engine.scheduler import split_planned

        specs = [_grouped(6, s) for s in range(16)]
        plan = plan_batches(list(enumerate(specs)))
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=len(specs),
            plan=plan,
            stream=stream,
            interval=0.0,
            clock=lambda: 0.0,
        )
        for half in split_planned(plan.batches[0]):
            for _, spec in half.items:
                reporter.update(ScenarioResult(spec=spec))
        lines = stream.getvalue().splitlines()
        assert lines[-1].startswith("[campaign] 16/16 scenarios (100%)")
        assert f"batch 1/{len(plan.batches)}" in lines[-1]
