"""Tests for the online skeleton monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random
from repro.predicates.psrcs import Psrcs
from repro.skeleton.monitor import SkeletonMonitor


def feed_adversary(monitor, adversary, rounds):
    reports = []
    for r in range(1, rounds + 1):
        g = adversary.graph(r).with_self_loops()
        reports.append(monitor.observe_graph(g))
    return reports


class TestMonitor:
    def test_no_rounds_yet(self):
        with pytest.raises(ValueError):
            SkeletonMonitor(3).current_report

    def test_first_round_snapshot(self):
        m = SkeletonMonitor(3)
        g = DiGraph.complete(range(3))
        report = m.observe_graph(g)
        assert report.round_no == 1
        assert report.skeleton_edges == 9
        assert report.max_decision_values == 1

    def test_edges_lost_reported(self):
        m = SkeletonMonitor(2)
        m.observe_graph(DiGraph.complete(range(2)))
        g = DiGraph(nodes=range(2), edges=[(0, 0), (1, 1), (0, 1)])
        report = m.observe_graph(g)
        assert report.edges_lost == ((1, 0),)

    def test_root_change_detected(self):
        m = SkeletonMonitor(2)
        m.observe_graph(DiGraph.complete(range(2)))  # one root {0,1}
        g = DiGraph(nodes=range(2), edges=[(0, 0), (1, 1)])
        report = m.observe_graph(g)  # two singleton roots
        assert report.roots_changed
        assert report.max_decision_values == 2

    def test_k_capability_non_decreasing(self):
        rng = np.random.default_rng(0)
        for seed in range(5):
            m = SkeletonMonitor(8)
            for _ in range(12):
                m.observe_graph(
                    gnp_random(8, 0.5, np.random.default_rng(rng.integers(1e9)),
                               self_loops=True)
                )
            history = m.k_capability_history()
            assert all(a <= b for a, b in zip(history, history[1:]))

    def test_matches_offline_analysis(self):
        adv = GroupedSourceAdversary(9, num_groups=3, seed=2, noise=0.3)
        m = SkeletonMonitor(9)
        feed_adversary(m, adv, rounds=20)
        # After the quiet rounds the skeleton equals the declaration.
        stable = adv.declared_stable_graph()
        report = m.current_report
        assert report.max_decision_values == 3
        assert report.tightest_k == Psrcs(1).tightest_k(stable)
        for p in range(9):
            assert m.timely_neighborhood(p) == stable.predecessors(p)

    def test_heard_of_interface(self):
        m = SkeletonMonitor(3)
        report = m.observe_heard_of(
            {0: frozenset({0, 1}), 1: frozenset({1}), 2: frozenset({2, 0})}
        )
        assert report.round_no == 1
        assert m.timely_neighborhood(0) == frozenset({0, 1})
        assert m.timely_neighborhood(2) == frozenset({2, 0})

    def test_root_count_history(self):
        adv = GroupedSourceAdversary(6, num_groups=2, seed=1, noise=0.4)
        m = SkeletonMonitor(6)
        feed_adversary(m, adv, rounds=15)
        history = m.root_count_history()
        assert history[-1] == 2
        # root counts can only grow (skeleton loses edges)
        assert all(a <= b for a, b in zip(history, history[1:]))

    def test_repr(self):
        m = SkeletonMonitor(4)
        m.observe_graph(DiGraph.complete(range(4)))
        assert "rounds=1" in repr(m)
