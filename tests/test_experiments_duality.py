"""Tests for the §V duality exploration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.experiments.duality import (
    achievable_k,
    chain_skeleton,
    duality_profile,
    duality_sweep,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random


class TestProfile:
    def test_theorem1_inequality(self):
        for seed in range(10):
            g = gnp_random(9, 0.2, np.random.default_rng(seed), self_loops=True)
            profile = duality_profile(g)
            assert profile.theorem1_holds
            assert profile.gap >= 0

    def test_grouped_designs_have_zero_gap(self):
        # The paper's tight constructions: rc == α.
        for m in (1, 2, 3):
            adv = GroupedSourceAdversary(9, num_groups=m, topology="star")
            profile = duality_profile(adv.declared_stable_graph())
            assert profile.root_components == m
            assert profile.alpha == m
            assert profile.gap == 0

    def test_partition_construction_zero_gap(self):
        adv = PartitionAdversary(8, 4)
        profile = duality_profile(adv.declared_stable_graph())
        assert profile.root_components == 4  # 3 loners + the source SCC
        assert profile.alpha == 4
        assert profile.gap == 0

    def test_chain_has_unbounded_gap(self):
        for n in (4, 6, 10):
            g = chain_skeleton(n)
            profile = duality_profile(g)
            assert profile.root_components == 1
            assert profile.alpha == (n + 1) // 2
            assert profile.gap == (n + 1) // 2 - 1

    def test_achievable_k_matches_decisions_noise_free(self):
        # rc(G) equals the exact number of decision values on noise-free
        # designed runs.
        from repro.experiments.sweeps import run_algorithm1

        for m in (1, 2, 3):
            adv = GroupedSourceAdversary(9, num_groups=m, noise=0.0)
            run = run_algorithm1(adv)
            assert achievable_k(run.stable_skeleton()) == m
            assert len(run.decision_values()) == m


class TestSweep:
    def test_sweep_shape_and_soundness(self):
        rows = duality_sweep(ns=(6, 8), densities=(0.1, 0.3), seeds=range(3))
        assert len(rows) == 4
        for n, p, mean_rc, mean_alpha, mean_gap, violations in rows:
            assert violations == 0
            assert mean_rc <= mean_alpha
            assert mean_gap == pytest.approx(mean_alpha - mean_rc)

    def test_denser_graphs_have_smaller_alpha(self):
        rows = duality_sweep(ns=(8,), densities=(0.05, 0.5), seeds=range(5))
        sparse_alpha = rows[0][3]
        dense_alpha = rows[1][3]
        assert dense_alpha <= sparse_alpha


@st.composite
def skeletons(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    g = DiGraph(nodes=range(n))
    for q in range(n):
        g.add_edge(q, q)
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=25,
        )
    )
    g.add_edges(extra)
    return g


class TestDualityProperties:
    @given(skeletons())
    @settings(max_examples=100, deadline=None)
    def test_theorem1_universal(self, g):
        # rc(G) <= α(G) for arbitrary self-delivering skeletons — the
        # property form of Theorem 1.
        profile = duality_profile(g)
        assert profile.theorem1_holds
