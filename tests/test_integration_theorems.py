"""THM1 / THM2 / EVENTUAL-LB integration tests: the paper's theorems hold
on simulated runs across parameter sweeps."""

from __future__ import annotations

import pytest

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.properties import check_agreement_properties
from repro.experiments.eventual import eventual_lower_bound
from repro.experiments.sweeps import run_algorithm1
from repro.experiments.theorem2 import theorem2_experiment
from repro.graphs.condensation import count_root_components
from repro.predicates.psrcs import Psrcs


class TestTheorem1:
    """At most k root components in any Psrcs(k) run."""

    @pytest.mark.parametrize("n,m", [(6, 1), (6, 2), (9, 3), (12, 4), (16, 5)])
    def test_grouped_designs_tight(self, n, m):
        adv = GroupedSourceAdversary(n, num_groups=m, seed=0)
        stable = adv.declared_stable_graph()
        assert Psrcs(m).check_skeleton(stable).holds
        assert count_root_components(stable) == m  # bound met with equality

    @pytest.mark.parametrize("seed", range(10))
    def test_random_skeletons_respect_bound(self, seed):
        # For arbitrary random stable skeletons: compute the tightest k
        # (α of the conflict graph) and check roots <= k.
        import numpy as np

        from repro.graphs.generators import gnp_random

        g = gnp_random(10, 0.15, np.random.default_rng(seed), self_loops=True)
        k_star = Psrcs(1).tightest_k(g)
        assert count_root_components(g) <= k_star

    @pytest.mark.parametrize("seed", range(5))
    def test_noisy_runs_respect_bound(self, seed):
        adv = GroupedSourceAdversary(10, num_groups=3, seed=seed, noise=0.3)
        run = run_algorithm1(adv)
        assert count_root_components(run.stable_skeleton()) <= 3


class TestTheorem2:
    """The impossibility construction forces exactly k decision values."""

    @pytest.mark.parametrize("n,k", [(4, 2), (6, 3), (8, 4), (10, 5), (16, 8)])
    def test_construction_confirms(self, n, k):
        report = theorem2_experiment(n, k)
        assert report.confirms_theorem
        assert report.distinct_decisions == k
        assert report.psrcs_k_holds
        assert not report.psrcs_k_minus_1_holds

    def test_k_equals_1_degenerate(self):
        # k=1: no loners, single source — consensus, Psrcs(1) holds.
        report = theorem2_experiment(5, 1)
        assert report.distinct_decisions == 1
        assert report.agreement.all_hold

    def test_loners_decide_at_round_n_plus_1(self):
        report = theorem2_experiment(7, 3)
        adv_loners = {p for p in report.run.decisions if p in {1, 2}}
        for p in adv_loners:
            assert report.run.decisions[p].round_no == 8

    def test_non_loners_adopt_source_value(self):
        report = theorem2_experiment(8, 3)
        run = report.run
        loners = {1, 2}
        source = 0
        for p in range(8):
            if p in loners or p == source:
                assert run.decisions[p].value == run.initial_values[p]
            else:
                assert run.decisions[p].value == run.initial_values[source]


class TestEventualLowerBound:
    """♦Psrcs admits runs with n distinct decisions."""

    def test_long_bad_prefix_forces_n_values(self):
        report = eventual_lower_bound(6, bad_rounds=10)
        assert report.distinct_decisions == 6
        assert report.all_decided_own

    def test_exact_threshold(self):
        # decisions happen at round n+1; a bad prefix of n+1 rounds suffices
        n = 5
        report = eventual_lower_bound(n, bad_rounds=n + 1)
        assert report.distinct_decisions == n

    def test_no_bad_prefix_reaches_consensus(self):
        report = eventual_lower_bound(6, bad_rounds=0)
        assert report.distinct_decisions == 1

    def test_single_bad_round_already_collapses(self):
        # Sharper than the generic indistinguishability argument: because
        # PT(p) is a *prefix intersection*, one all-isolated round pins
        # PT(p) = {p} forever; every process's approximation is the
        # strongly connected singleton and all n decide their own value.
        n = 6
        report = eventual_lower_bound(n, bad_rounds=1)
        assert report.distinct_decisions == n
        assert report.all_decided_own

    @pytest.mark.parametrize("bad", [0, 1, 2, 4, 7, 9])
    def test_sweep_regimes(self, bad):
        n = 6
        report = eventual_lower_bound(n, bad_rounds=bad)
        expected = 1 if bad == 0 else n
        assert report.distinct_decisions == expected
        assert check_agreement_properties(report.run, n).validity.holds
