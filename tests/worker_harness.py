"""Boot a fleet of real ``repro worker`` subprocesses for tests, with
guaranteed teardown.

Mirrors :mod:`daemon_harness`: each worker runs exactly as a user would
— ``python -m repro worker --listen 127.0.0.1:0 --port-file ...`` — the
harness polls the port files for the bound endpoints, yields them, and
always tears the subprocesses down (SIGTERM, bounded wait, SIGKILL
escalation), so a failing assertion can never leave a worker wedging
the suite.

Usage::

    from worker_harness import worker_fleet

    def test_something(tmp_path):
        with worker_fleet(tmp_path, count=2) as fleet:
            execute_remote(specs, fleet.endpoints, ...)

All tests using this module must carry the ``daemon`` marker (see
``pytest.ini``), which arms a per-test SIGALRM timeout so a hung worker
fails the test fast instead of hanging the run.
"""

from __future__ import annotations

import contextlib
import signal
import subprocess
import sys
import time
from pathlib import Path

from daemon_harness import repro_env

STARTUP_TIMEOUT = 30.0
SHUTDOWN_TIMEOUT = 30.0


class WorkerFleet:
    """The live worker subprocesses plus their dialable endpoints."""

    def __init__(
        self, procs: list[subprocess.Popen], endpoints: list[str]
    ) -> None:
        self.procs = procs
        self.endpoints = endpoints

    def kill(self, index: int) -> None:
        """Hard-kill one worker (crash simulation)."""
        proc = self.procs[index]
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    def stop(self, timeout: float = SHUTDOWN_TIMEOUT) -> list[int]:
        """SIGTERM every worker and wait; returns their exit codes."""
        for proc in self.procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        codes = []
        for proc in self.procs:
            try:
                proc.communicate(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate(timeout=10)
            codes.append(proc.returncode)
        return codes


@contextlib.contextmanager
def worker_fleet(
    tmp_path: Path,
    count: int = 2,
    env_extra: dict | None = None,
    startup_timeout: float = STARTUP_TIMEOUT,
):
    """Boot ``count`` listening workers on ephemeral ports; yield a
    :class:`WorkerFleet`; always tear the subprocesses down."""
    procs: list[subprocess.Popen] = []
    port_files: list[Path] = []
    try:
        for i in range(count):
            port_file = tmp_path / f"worker-{i}.port"
            port_files.append(port_file)
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "worker",
                        "--listen", "127.0.0.1:0",
                        "--port-file", str(port_file),
                    ],
                    env=repro_env(env_extra),
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
        endpoints: list[str] = []
        deadline = time.monotonic() + startup_timeout
        for i, port_file in enumerate(port_files):
            while True:
                if procs[i].poll() is not None:
                    raise RuntimeError(
                        f"worker {i} exited during startup "
                        f"(rc {procs[i].returncode})"
                    )
                if port_file.exists():
                    text = port_file.read_text().strip()
                    if text:
                        endpoints.append(text)
                        break
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"worker {i} wrote no port file within "
                        f"{startup_timeout:.0f}s"
                    )
                time.sleep(0.05)
        yield WorkerFleet(procs, endpoints)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.communicate(timeout=SHUTDOWN_TIMEOUT)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate(timeout=10)
