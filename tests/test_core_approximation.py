"""Unit tests for the approximation graph (Algorithm 1 lines 14–25)."""

from __future__ import annotations

import pytest

from repro.core.approximation import ApproximationGraph
from repro.graphs.labeled import RoundLabeledDigraph


def graphs_for(pt, mapping=None):
    """received_graphs for a round: default everyone sends an empty graph
    containing just themselves."""
    mapping = mapping or {}
    return {
        q: mapping.get(q, RoundLabeledDigraph(nodes=[q])) for q in pt
    }


class TestConstruction:
    def test_initial_state_line3(self):
        a = ApproximationGraph(owner=2, n=5)
        assert a.nodes() == frozenset({2})
        assert a.labeled_edges() == frozenset()

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproximationGraph(0, 0)
        with pytest.raises(ValueError):
            ApproximationGraph(0, 3, purge_window=0)

    def test_purge_window_defaults_to_n(self):
        assert ApproximationGraph(0, 7).purge_window == 7
        assert ApproximationGraph(0, 7, purge_window=3).purge_window == 3


class TestRoundUpdate:
    def test_line17_fresh_edges(self):
        a = ApproximationGraph(owner=0, n=4)
        a.round_update(1, {0, 2}, graphs_for({0, 2}))
        assert a.graph.label(0, 0) == 1
        assert a.graph.label(2, 0) == 1

    def test_missing_received_graph_rejected(self):
        a = ApproximationGraph(owner=0, n=4)
        with pytest.raises(ValueError, match="no received graph"):
            a.round_update(1, {0, 2}, {0: RoundLabeledDigraph(nodes=[0])})

    def test_line18_node_union(self):
        a = ApproximationGraph(owner=0, n=4)
        g2 = RoundLabeledDigraph(nodes=[2])
        g2.add_edge(3, 2, 1)  # brings node 3 along
        a.round_update(2, {0, 2}, graphs_for({0, 2}, {2: g2}))
        assert 3 in a.nodes()

    def test_lines19_23_max_merge(self):
        a = ApproximationGraph(owner=0, n=5)
        low = RoundLabeledDigraph(nodes=[1])
        low.add_edge(3, 1, 2)
        high = RoundLabeledDigraph(nodes=[2])
        high.add_edge(3, 1, 4)
        a.round_update(5, {0, 1, 2}, graphs_for({0, 1, 2}, {1: low, 2: high}))
        assert a.graph.label(3, 1) == 4

    def test_line17_label_dominates_received(self):
        # A received graph carries an older (q -> owner) edge; line 17's
        # fresh label must win.
        a = ApproximationGraph(owner=0, n=5)
        stale = RoundLabeledDigraph(nodes=[1])
        stale.add_edge(1, 0, 2)
        a.round_update(6, {0, 1}, graphs_for({0, 1}, {1: stale}))
        assert a.graph.label(1, 0) == 6

    def test_line24_purge(self):
        a = ApproximationGraph(owner=0, n=3)
        old = RoundLabeledDigraph(nodes=[1])
        old.add_edge(2, 1, 1)  # label 1, will be <= r - n for r = 4
        a.round_update(4, {0, 1}, graphs_for({0, 1}, {1: old}))
        assert a.graph.get_label(2, 1) is None

    def test_line24_boundary(self):
        # label re is discarded iff re <= r - n: label 2 at r=5, n=3 → purged;
        # label 3 survives.  Pruning disabled to isolate line 24 (node 2
        # would otherwise be dropped by line 25 as it cannot reach owner 0).
        a = ApproximationGraph(owner=0, n=3, prune_unreachable=False)
        g = RoundLabeledDigraph(nodes=[1])
        g.add_edge(2, 1, 2)
        g.add_edge(1, 2, 3)
        a.round_update(5, {0, 1}, graphs_for({0, 1}, {1: g}))
        assert a.graph.get_label(2, 1) is None
        assert a.graph.get_label(1, 2) == 3

    def test_line25_prunes_non_reaching(self):
        a = ApproximationGraph(owner=0, n=5)
        g = RoundLabeledDigraph(nodes=[1])
        g.add_edge(3, 4, 1)  # neither 3 nor 4 reaches owner 0
        a.round_update(2, {0, 1}, graphs_for({0, 1}, {1: g}))
        assert 3 not in a.nodes()
        assert 4 not in a.nodes()

    def test_line25_keeps_reaching_chain(self):
        a = ApproximationGraph(owner=0, n=5)
        g = RoundLabeledDigraph(nodes=[1])
        g.add_edge(3, 1, 1)  # 3 -> 1, and line 17 adds 1 -> 0
        a.round_update(2, {0, 1}, graphs_for({0, 1}, {1: g}))
        assert 3 in a.nodes()
        assert a.graph.has_edge(3, 1)

    def test_line25_can_be_disabled(self):
        a = ApproximationGraph(owner=0, n=5, prune_unreachable=False)
        g = RoundLabeledDigraph(nodes=[1])
        g.add_edge(3, 4, 1)
        a.round_update(2, {0, 1}, graphs_for({0, 1}, {1: g}))
        assert 3 in a.nodes()

    def test_line15_reset_drops_untimely_info(self):
        # Round 1: hear 1; round 2: 1 drops out of PT — its fresh edge must
        # not survive via the reset unless someone re-sends it.
        a = ApproximationGraph(owner=0, n=4)
        a.round_update(1, {0, 1}, graphs_for({0, 1}))
        own = a.snapshot()
        a.round_update(2, {0}, {0: own})
        # the (1 --1--> 0) edge came back via own graph (labels stay valid,
        # Lemma 6) but no (1 --2--> 0) edge exists.
        assert a.graph.get_label(1, 0) == 1

    def test_owner_never_pruned(self):
        a = ApproximationGraph(owner=3, n=4)
        a.round_update(1, set(), {})
        assert 3 in a.nodes()


class TestViews:
    def test_snapshot_is_independent(self):
        a = ApproximationGraph(owner=0, n=3)
        snap = a.snapshot()
        a.round_update(1, {0}, {0: snap})
        assert snap.number_of_edges() == 0

    def test_unweighted(self):
        a = ApproximationGraph(owner=0, n=3)
        a.round_update(1, {0, 1}, graphs_for({0, 1}))
        u = a.unweighted()
        assert u.has_edge(1, 0)

    def test_strong_connectivity_singleton(self):
        # Isolated process: approximation {p} with a self-loop — strongly
        # connected (needed by Theorem 2's loners).
        a = ApproximationGraph(owner=0, n=4)
        a.round_update(1, {0}, graphs_for({0}))
        assert a.is_strongly_connected()

    def test_strong_connectivity_pair(self):
        a0 = ApproximationGraph(owner=0, n=2)
        a0.round_update(1, {0, 1}, graphs_for({0, 1}))
        # 1 -> 0 and self loops, but no 0 -> 1 edge yet: still "strongly
        # connected"? No — node 1 unreachable from 0.
        assert not a0.is_strongly_connected()

    def test_repr(self):
        assert "owner=0" in repr(ApproximationGraph(owner=0, n=2))
