"""Tests for cross-run distribution summaries."""

from __future__ import annotations

import pytest

from repro.analysis.distributions import (
    LatencyDistribution,
    latency_distribution,
    latency_scaling_table,
    noise_sensitivity_table,
)


class TestLatencyDistribution:
    def test_basic_fields(self):
        dist = latency_distribution(6, 2, 0.2, seeds=range(4))
        assert dist.runs == 4
        assert dist.bound_violations == 0
        assert dist.p50_last_decide <= dist.p95_last_decide <= dist.max_last_decide
        assert 1 <= dist.mean_values <= 2

    def test_noise_free_values_equal_groups(self):
        dist = latency_distribution(8, 2, 0.0, seeds=range(3))
        assert dist.mean_values == pytest.approx(2.0)

    def test_as_row_matches_headers(self):
        dist = latency_distribution(6, 2, 0.1, seeds=range(2))
        assert len(dist.as_row()) == len(LatencyDistribution.HEADERS)


class TestScaling:
    def test_latency_grows_with_n(self):
        rows = latency_scaling_table(ns=[6, 12, 18], seeds=range(3))
        medians = [r.p50_last_decide for r in rows]
        assert medians == sorted(medians)
        assert all(r.bound_violations == 0 for r in rows)

    def test_latency_roughly_linear(self):
        # Lemma 11's bound is linear in n; the observed median should be
        # sub-quadratic by a wide margin.
        rows = latency_scaling_table(ns=[6, 24], seeds=range(3))
        ratio = rows[1].p50_last_decide / rows[0].p50_last_decide
        assert ratio < (24 / 6) ** 1.5


class TestNoiseSensitivity:
    def test_table_shape(self):
        rows = noise_sensitivity_table(
            noises=[0.0, 0.3], seeds=range(3), n=8, num_groups=2
        )
        assert len(rows) == 2
        assert all(r.bound_violations == 0 for r in rows)

    def test_noise_delays_stabilization(self):
        rows = noise_sensitivity_table(
            noises=[0.0, 0.4], seeds=range(4), n=8, num_groups=2
        )
        clean, noisy = rows
        assert clean.p50_stabilization <= noisy.p50_stabilization

    def test_noise_leaks_values(self):
        # with noise, early PT sets are larger, so minima leak across
        # groups: mean distinct values can only go down.
        rows = noise_sensitivity_table(
            noises=[0.0, 0.5], seeds=range(4), n=9, num_groups=3
        )
        clean, noisy = rows
        assert noisy.mean_values <= clean.mean_values
