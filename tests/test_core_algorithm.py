"""Tests for Algorithm 1 (SkeletonAgreementProcess)."""

from __future__ import annotations

import pytest

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.adversaries.static import StaticAdversary
from repro.core.algorithm import make_processes, SkeletonAgreementProcess
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import directed_cycle
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def run_with(adversary, n, values=None, max_rounds=60, track_history=False):
    procs = make_processes(n, values, track_history=track_history)
    run = RoundSimulator(
        procs, adversary, SimulationConfig(max_rounds=max_rounds)
    ).run()
    return run, procs


class TestInitialState:
    def test_lines_1_to_4(self):
        p = SkeletonAgreementProcess(2, 5, initial_value=42)
        assert p.pt == frozenset(range(5))          # line 1
        assert p.estimate == 42                      # line 2
        assert p.approx.nodes() == frozenset({2})    # line 3
        assert not p.decided                         # line 4

    def test_make_processes_defaults(self):
        procs = make_processes(4)
        assert [p.initial_value for p in procs] == [0, 1, 2, 3]

    def test_make_processes_validates(self):
        with pytest.raises(ValueError):
            make_processes(3, values=[1, 2])


class TestSending:
    def test_prop_before_decision(self):
        p = SkeletonAgreementProcess(0, 3, initial_value=7)
        msg = p.send(1)
        assert msg.kind == "prop"
        assert msg.payload["x"] == 7

    def test_decide_kind_after_decision(self):
        p = SkeletonAgreementProcess(0, 3, initial_value=7)
        p._decide(5, 7)
        assert p.send(6).kind == "decide"

    def test_graph_payload_is_snapshot(self):
        p = SkeletonAgreementProcess(0, 3, initial_value=7)
        msg = p.send(1)
        p.approx.graph.add_edge(1, 0, 1)
        assert msg.payload["graph"].number_of_edges() == 0


class TestIsolatedProcess:
    """A fully isolated process (self-loops only): the Theorem 2 loner."""

    def test_decides_own_value_at_round_n_plus_1(self):
        n = 4
        adv = StaticAdversary(n, DiGraph(nodes=range(n)))  # self-loops only
        run, procs = run_with(adv, n, values=[10, 11, 12, 13])
        for p in range(n):
            assert run.decisions[p].value == 10 + p
            assert run.decisions[p].round_no == n + 1

    def test_no_decision_before_round_n_plus_1(self):
        # Line 28's r > n guard.
        n = 5
        adv = StaticAdversary(n, DiGraph(nodes=range(n)))
        run, _ = run_with(adv, n)
        assert all(d.round_no == n + 1 for d in run.decisions.values())


class TestEstimatePropagation:
    def test_min_propagates_in_clique(self):
        n = 5
        adv = StaticAdversary(n, DiGraph.complete(range(n)))
        run, procs = run_with(adv, n, values=[9, 3, 7, 5, 8])
        assert run.all_decided()
        assert run.decision_values() == {3}

    def test_min_propagates_around_cycle(self):
        # worst case: n-1 rounds for the min to travel a directed cycle
        n = 6
        adv = StaticAdversary(n, directed_cycle(n))
        run, procs = run_with(adv, n, values=[4, 9, 8, 7, 6, 5], track_history=True)
        assert run.decision_values() == {4}
        # value 4 reaches the farthest process only at round n-1
        farthest = 0  # process 0's value travels 0->1->...->5
        assert procs[5].estimate_at(n - 1) == 4

    def test_estimates_restricted_to_pt(self):
        # A value from a non-timely sender must not be adopted: partition
        # adversary loners never see other values.
        adv = PartitionAdversary(5, 3)
        run, procs = run_with(adv, 5, values=[50, 10, 20, 30, 40])
        for loner in adv.loners:
            assert run.decisions[loner].value == run.initial_values[loner]


class TestDecisionMechanics:
    def test_decide_messages_adopt(self):
        # Figure-1-like: downstream p6 adopts the decision of a timely
        # neighbor via lines 10-13.
        from repro.experiments.figure1 import figure1_run, P6

        run, procs = figure1_run()
        assert procs[P6].decided
        # p6's approximation never becomes strongly connected (no out-edges),
        # so it must have decided via a decide message: its decision round is
        # strictly after some root component process decided.
        root_rounds = [run.decisions[p].round_no for p in (0, 1, 2, 3, 4)]
        assert run.decisions[P6].round_no > min(root_rounds)

    def test_adoption_picks_smallest_sender(self):
        # Two timely deciders in the same round: deterministic tie-break.
        from repro.adversaries.grouped import GroupedSourceAdversary

        # two groups, downstream node 4 hears sources 0 and 2 stably
        adv = GroupedSourceAdversary(
            5,
            num_groups=2,
            groups=[[0, 1], [2, 3, 4]],
            extra_stable_edges=[(0, 4)],
        )
        run, procs = run_with(adv, 5, values=[5, 6, 1, 2, 3])
        assert run.all_decided()

    def test_decided_process_keeps_estimate(self):
        n = 4
        adv = StaticAdversary(n, DiGraph.complete(range(n)))
        run, procs = run_with(adv, n, values=[3, 1, 2, 4])
        for p in procs:
            assert p.estimate == p.decision.value

    def test_no_double_decide(self):
        # run long past the decision round; Lemma 10's guard must hold
        n = 3
        adv = StaticAdversary(n, DiGraph.complete(range(n)))
        procs = make_processes(n)
        RoundSimulator(
            procs,
            adv,
            SimulationConfig(max_rounds=25, stop_when_all_decided=False),
        ).run()
        # Process._decide raises on double decision, so reaching here with
        # all decided is the assertion.
        assert all(p.decided for p in procs)


class TestHistory:
    def test_history_disabled_raises(self):
        p = SkeletonAgreementProcess(0, 2, 0)
        with pytest.raises(RuntimeError):
            p.approximation_at(1)
        with pytest.raises(RuntimeError):
            p.pt_at(1)
        with pytest.raises(RuntimeError):
            p.estimate_at(1)

    def test_history_records(self):
        n = 3
        adv = StaticAdversary(n, DiGraph.complete(range(n)))
        run, procs = run_with(adv, n, track_history=True)
        p = procs[0]
        for r in range(1, run.num_rounds + 1):
            assert p.pt_at(r) == run.timely_neighborhood(0, r)

    def test_state_snapshot(self):
        p = SkeletonAgreementProcess(1, 3, 5)
        snap = p.state_snapshot()
        assert snap["estimate"] == 5
        assert snap["pt"] == [0, 1, 2]
        assert snap["approx_nodes"] == [1]


class TestAblationKnobs:
    def test_make_processes_forwards_knobs(self):
        procs = make_processes(4, purge_window=2, prune_unreachable=False)
        assert all(p.approx.purge_window == 2 for p in procs)
        assert all(not p.approx.prune_unreachable for p in procs)

    def test_small_purge_window_still_runs(self):
        adv = GroupedSourceAdversary(6, num_groups=2, seed=0)
        procs = make_processes(6, purge_window=2)
        run = RoundSimulator(
            procs, adv, SimulationConfig(max_rounds=40)
        ).run()
        assert run.num_rounds <= 40
