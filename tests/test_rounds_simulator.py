"""Tests for the round executor."""

from __future__ import annotations

import pytest

from repro.adversaries.static import StaticAdversary
from repro.graphs.digraph import DiGraph
from repro.rounds.messages import Message
from repro.rounds.process import Process
from repro.rounds.simulator import RoundSimulator, SimulationConfig, simulate


class CollectorProcess(Process):
    """Records who it heard from each round; decides at a fixed round."""

    def __init__(self, pid, n, decide_at=None):
        super().__init__(pid, n, initial_value=pid)
        self.heard: dict[int, frozenset[int]] = {}
        self.decide_at = decide_at
        self.sent_rounds: list[int] = []

    def send(self, round_no):
        self.sent_rounds.append(round_no)
        return Message(sender=self.pid, round_no=round_no, payload=self.pid)

    def transition(self, round_no, received):
        self.heard[round_no] = frozenset(received)
        if self.decide_at == round_no:
            self._decide(round_no, self.pid)


class BadSenderProcess(CollectorProcess):
    def send(self, round_no):
        return Message(sender=(self.pid + 1) % self.n, round_no=round_no)


class WrongRoundProcess(CollectorProcess):
    def send(self, round_no):
        return Message(sender=self.pid, round_no=round_no + 1)


def ring(n):
    g = DiGraph(nodes=range(n))
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_rounds=0)
        with pytest.raises(ValueError):
            SimulationConfig(grace_rounds=-1)


class TestSimulator:
    def test_needs_processes(self):
        with pytest.raises(ValueError):
            RoundSimulator([], StaticAdversary(1, DiGraph(nodes=[0])))

    def test_processes_must_be_ordered(self):
        procs = [CollectorProcess(1, 2), CollectorProcess(0, 2)]
        with pytest.raises(ValueError, match="ordered by pid"):
            RoundSimulator(procs, StaticAdversary(2, DiGraph.complete(range(2))))

    def test_delivery_follows_graph(self):
        n = 4
        procs = [CollectorProcess(i, n) for i in range(n)]
        adv = StaticAdversary(n, ring(n))
        run = RoundSimulator(
            procs, adv, SimulationConfig(max_rounds=3, stop_when_all_decided=False)
        ).run()
        assert run.num_rounds == 3
        for i in range(n):
            # ring + enforced self-loop
            assert procs[i].heard[1] == frozenset({i, (i - 1) % n})

    def test_self_delivery_enforced_by_default(self):
        procs = [CollectorProcess(i, 2) for i in range(2)]
        empty = DiGraph(nodes=range(2))
        adv = StaticAdversary(2, empty, self_loops=False)
        run = RoundSimulator(
            procs, adv, SimulationConfig(max_rounds=1, stop_when_all_decided=False)
        ).run()
        assert procs[0].heard[1] == frozenset({0})
        assert run.graph(1).has_edge(0, 0)

    def test_self_delivery_can_be_disabled(self):
        procs = [CollectorProcess(i, 2) for i in range(2)]
        adv = StaticAdversary(2, DiGraph(nodes=range(2)), self_loops=False)
        config = SimulationConfig(
            max_rounds=1, enforce_self_delivery=False, stop_when_all_decided=False
        )
        RoundSimulator(procs, adv, config).run()
        assert procs[0].heard[1] == frozenset()

    def test_all_sends_before_any_delivery(self):
        # Communication-closed rounds: the message a process receives in
        # round r was computed from beginning-of-round state.  The
        # CollectorProcess records send order; every process must have sent
        # round r before any transition of round r happened — verified
        # indirectly: sent_rounds have no gaps and match num_rounds.
        procs = [CollectorProcess(i, 3) for i in range(3)]
        adv = StaticAdversary(3, DiGraph.complete(range(3)))
        run = RoundSimulator(
            procs, adv, SimulationConfig(max_rounds=4, stop_when_all_decided=False)
        ).run()
        for p in procs:
            assert p.sent_rounds == [1, 2, 3, 4]

    def test_stop_when_all_decided(self):
        procs = [CollectorProcess(i, 2, decide_at=3) for i in range(2)]
        adv = StaticAdversary(2, DiGraph.complete(range(2)))
        run = RoundSimulator(procs, adv, SimulationConfig(max_rounds=50)).run()
        assert run.num_rounds == 3
        assert run.all_decided()

    def test_grace_rounds(self):
        procs = [CollectorProcess(i, 2, decide_at=2) for i in range(2)]
        adv = StaticAdversary(2, DiGraph.complete(range(2)))
        run = RoundSimulator(
            procs, adv, SimulationConfig(max_rounds=50, grace_rounds=4)
        ).run()
        assert run.num_rounds == 6

    def test_max_rounds_cap(self):
        procs = [CollectorProcess(i, 2) for i in range(2)]  # never decide
        adv = StaticAdversary(2, DiGraph.complete(range(2)))
        run = RoundSimulator(procs, adv, SimulationConfig(max_rounds=7)).run()
        assert run.num_rounds == 7
        assert not run.all_decided()

    def test_decisions_recorded_in_run(self):
        procs = [CollectorProcess(i, 3, decide_at=i + 1) for i in range(3)]
        adv = StaticAdversary(3, DiGraph.complete(range(3)))
        run = RoundSimulator(procs, adv, SimulationConfig(max_rounds=10)).run()
        assert run.decision_rounds() == {0: 1, 1: 2, 2: 3}

    def test_declared_stable_graph_propagates(self):
        g = DiGraph.complete(range(2))
        adv = StaticAdversary(2, g)
        procs = [CollectorProcess(i, 2) for i in range(2)]
        run = RoundSimulator(procs, adv, SimulationConfig(max_rounds=1)).run()
        assert run.declared_stable_graph == g

    def test_record_messages(self):
        procs = [CollectorProcess(i, 2) for i in range(2)]
        adv = StaticAdversary(2, DiGraph.complete(range(2)))
        run = RoundSimulator(
            procs,
            adv,
            SimulationConfig(max_rounds=2, record_messages=True,
                             stop_when_all_decided=False),
        ).run()
        assert set(run.messages(1)) == {0, 1}
        assert run.messages(1)[0].payload == 0

    def test_record_states(self):
        procs = [CollectorProcess(i, 2) for i in range(2)]
        adv = StaticAdversary(2, DiGraph.complete(range(2)))
        run = RoundSimulator(
            procs,
            adv,
            SimulationConfig(max_rounds=1, record_states=True,
                             stop_when_all_decided=False),
        ).run()
        assert run.rounds[0].state_snapshots[1]["pid"] == 1

    def test_wrong_sender_rejected(self):
        procs = [BadSenderProcess(i, 2) for i in range(2)]
        adv = StaticAdversary(2, DiGraph.complete(range(2)))
        with pytest.raises(ValueError, match="claiming sender"):
            RoundSimulator(procs, adv).run()

    def test_wrong_round_rejected(self):
        procs = [WrongRoundProcess(i, 2) for i in range(2)]
        adv = StaticAdversary(2, DiGraph.complete(range(2)))
        with pytest.raises(ValueError, match="communication-closed"):
            RoundSimulator(procs, adv).run()

    def test_bad_adversary_nodes_rejected(self):
        class BadAdversary:
            n = 2

            def graph(self, round_no):
                return DiGraph(nodes=range(3))

            def declared_stable_graph(self):
                return None

        procs = [CollectorProcess(i, 2) for i in range(2)]
        with pytest.raises(ValueError, match="expected exactly"):
            RoundSimulator(procs, BadAdversary()).run()

    def test_invariant_hooks_called_each_round(self):
        calls = []

        def hook(run, round_no, processes):
            calls.append(round_no)

        procs = [CollectorProcess(i, 2) for i in range(2)]
        adv = StaticAdversary(2, DiGraph.complete(range(2)))
        RoundSimulator(
            procs, adv, SimulationConfig(max_rounds=3, stop_when_all_decided=False),
            invariant_hooks=[hook],
        ).run()
        assert calls == [1, 2, 3]

    def test_hook_abort(self):
        def hook(run, round_no, processes):
            raise AssertionError("boom")

        procs = [CollectorProcess(i, 2) for i in range(2)]
        adv = StaticAdversary(2, DiGraph.complete(range(2)))
        with pytest.raises(AssertionError, match="boom"):
            RoundSimulator(procs, adv, invariant_hooks=[hook]).run()

    def test_simulate_wrapper(self):
        procs = [CollectorProcess(i, 2, decide_at=1) for i in range(2)]
        run = simulate(procs, StaticAdversary(2, DiGraph.complete(range(2))))
        assert run.all_decided()
