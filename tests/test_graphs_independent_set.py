"""Independent-set solver tests with a networkx oracle."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.independent_set import (
    find_independent_set_of_size,
    greedy_independent_set,
    has_independent_set_of_size,
    independence_number,
    maximum_independent_set,
)


def is_independent(adjacency: dict, nodes: set) -> bool:
    return all(
        v not in adjacency.get(u, set()) for u in nodes for v in nodes if u != v
    )


def oracle_alpha(adjacency: dict) -> int:
    """Exact independence number via networkx max clique on the complement."""
    g = nx.Graph()
    g.add_nodes_from(adjacency)
    for u, vs in adjacency.items():
        for v in vs:
            if u != v:
                g.add_edge(u, v)
    comp = nx.complement(g)
    best = 0
    for clique in nx.find_cliques(comp) if comp.number_of_nodes() else []:
        best = max(best, len(clique))
    return best


def random_graph(n: int, p: float, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    adj = {i: set() for i in range(n)}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                adj[u].add(v)
                adj[v].add(u)
    return adj


class TestBasics:
    def test_empty_graph(self):
        assert independence_number({}) == 0
        assert maximum_independent_set({}) == set()

    def test_no_edges(self):
        adj = {i: set() for i in range(5)}
        assert independence_number(adj) == 5

    def test_complete_graph(self):
        adj = {i: {j for j in range(4) if j != i} for i in range(4)}
        assert independence_number(adj) == 1

    def test_path_graph(self):
        # path 0-1-2-3-4: alpha = 3 ({0,2,4})
        adj = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}
        assert independence_number(adj) == 3
        assert is_independent(adj, maximum_independent_set(adj))

    def test_cycle_5(self):
        adj = {i: {(i - 1) % 5, (i + 1) % 5} for i in range(5)}
        assert independence_number(adj) == 2

    def test_star(self):
        adj = {0: {1, 2, 3, 4}, 1: {0}, 2: {0}, 3: {0}, 4: {0}}
        assert independence_number(adj) == 4

    def test_self_loops_ignored(self):
        adj = {0: {0}, 1: {1}}
        assert independence_number(adj) == 2

    def test_asymmetric_input_symmetrized(self):
        # adjacency given one-directed; solver must treat it as undirected
        adj = {0: {1}, 1: set(), 2: set()}
        assert independence_number(adj) == 2

    def test_greedy_returns_independent_set(self):
        adj = random_graph(15, 0.3, 1)
        assert is_independent(adj, greedy_independent_set(adj))


class TestDecision:
    def test_has_size_zero_always(self):
        assert has_independent_set_of_size({}, 0)

    def test_size_larger_than_graph(self):
        assert not has_independent_set_of_size({0: set()}, 2)

    def test_decision_consistency(self):
        adj = random_graph(12, 0.35, 5)
        alpha = independence_number(adj)
        assert has_independent_set_of_size(adj, alpha)
        assert not has_independent_set_of_size(adj, alpha + 1)

    def test_find_returns_valid_witness(self):
        adj = random_graph(12, 0.3, 7)
        alpha = independence_number(adj)
        witness = find_independent_set_of_size(adj, alpha)
        assert witness is not None
        assert len(witness) == alpha
        assert is_independent(adj, witness)

    def test_find_none_when_impossible(self):
        adj = {i: {j for j in range(4) if j != i} for i in range(4)}
        assert find_independent_set_of_size(adj, 2) is None

    def test_find_size_zero(self):
        assert find_independent_set_of_size({}, 0) == set()


class TestOracle:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("p", [0.1, 0.3, 0.6])
    def test_alpha_matches_networkx(self, seed, p):
        adj = random_graph(12, p, seed)
        assert independence_number(adj) == oracle_alpha(adj)


@st.composite
def undirected_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    adj = {i: set() for i in range(n)}
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=30,
        )
    )
    for u, v in pairs:
        if u != v:
            adj[u].add(v)
            adj[v].add(u)
    return adj


class TestProperties:
    @given(undirected_graphs())
    @settings(max_examples=100, deadline=None)
    def test_result_is_independent_and_exact(self, adj):
        mis = maximum_independent_set(adj)
        assert is_independent(adj, mis)
        assert len(mis) == oracle_alpha(adj)

    @given(undirected_graphs())
    @settings(max_examples=100, deadline=None)
    def test_greedy_lower_bounds_exact(self, adj):
        assert len(greedy_independent_set(adj)) <= independence_number(adj)

    @given(undirected_graphs(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_decision_matches_alpha(self, adj, size):
        assert has_independent_set_of_size(adj, size) == (
            independence_number(adj) >= size
        )
