"""Run serialization and replay: record once, re-execute offline."""

from __future__ import annotations

import json

import pytest

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.properties import check_agreement_properties
from repro.core.algorithm import make_processes
from repro.rounds.run import Run
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def record_run(n=7, m=2, seed=5, noise=0.3):
    adv = GroupedSourceAdversary(n, num_groups=m, seed=seed, noise=noise)
    return RoundSimulator(
        make_processes(n), adv, SimulationConfig(max_rounds=50)
    ).run()


class TestSerialization:
    def test_roundtrip_preserves_graphs(self):
        run = record_run()
        rebuilt = Run.from_dict(run.to_dict())
        assert rebuilt.num_rounds == run.num_rounds
        for r in range(1, run.num_rounds + 1):
            assert rebuilt.graph(r) == run.graph(r)
            assert rebuilt.skeleton(r) == run.skeleton(r)

    def test_roundtrip_preserves_decisions(self):
        run = record_run()
        rebuilt = Run.from_dict(run.to_dict())
        assert rebuilt.decision_rounds() == run.decision_rounds()
        assert rebuilt.decision_values() == run.decision_values()
        assert rebuilt.initial_values == run.initial_values

    def test_roundtrip_preserves_stable_skeleton(self):
        run = record_run()
        rebuilt = Run.from_dict(run.to_dict())
        assert rebuilt.stable_skeleton() == run.stable_skeleton()

    def test_json_serializable(self):
        run = record_run()
        encoded = json.dumps(run.to_dict())
        rebuilt = Run.from_dict(json.loads(encoded))
        assert rebuilt.decision_values() == run.decision_values()

    def test_analysis_works_on_rebuilt(self):
        run = record_run()
        rebuilt = Run.from_dict(run.to_dict())
        report = check_agreement_properties(rebuilt, 2)
        assert report.all_hold


class TestReplay:
    def test_replay_reproduces_decisions(self):
        # Re-executing Algorithm 1 against the recorded graph sequence must
        # give identical decisions (the run is a deterministic function of
        # initial values + graphs — §II).
        run = record_run()
        replay = run.replay_adversary()
        rerun = RoundSimulator(
            make_processes(run.n, run.initial_values),
            replay,
            SimulationConfig(max_rounds=run.num_rounds),
        ).run()
        assert rerun.decision_rounds() == run.decision_rounds()
        assert {p: d.value for p, d in rerun.decisions.items()} == {
            p: d.value for p, d in run.decisions.items()
        }

    def test_replay_after_json_roundtrip(self):
        run = record_run(seed=9)
        rebuilt = Run.from_dict(json.loads(json.dumps(run.to_dict())))
        rerun = RoundSimulator(
            make_processes(run.n, run.initial_values),
            rebuilt.replay_adversary(),
            SimulationConfig(max_rounds=run.num_rounds),
        ).run()
        assert rerun.decision_values() == run.decision_values()

    def test_replay_different_algorithm(self):
        from repro.baselines.floodmin import make_floodmin_processes

        run = record_run()
        rerun = RoundSimulator(
            make_floodmin_processes(run.n, f=2, k=2),
            run.replay_adversary(),
            SimulationConfig(max_rounds=run.num_rounds),
        ).run()
        for r in range(1, rerun.num_rounds + 1):
            assert rerun.graph(r) == run.graph(r)
