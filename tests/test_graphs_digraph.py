"""Unit tests for repro.graphs.digraph.DiGraph."""

from __future__ import annotations

import pytest

from repro.graphs.digraph import DiGraph


class TestConstruction:
    def test_empty(self):
        g = DiGraph()
        assert g.number_of_nodes() == 0
        assert g.number_of_edges() == 0
        assert not g

    def test_nodes_only(self):
        g = DiGraph(nodes=[1, 2, 3])
        assert g.nodes() == frozenset({1, 2, 3})
        assert g.number_of_edges() == 0

    def test_edges_add_endpoints(self):
        g = DiGraph(edges=[(0, 1), (1, 2)])
        assert g.nodes() == frozenset({0, 1, 2})
        assert g.number_of_edges() == 2

    def test_duplicate_edges_idempotent(self):
        g = DiGraph(edges=[(0, 1), (0, 1), (0, 1)])
        assert g.number_of_edges() == 1

    def test_self_loop(self):
        g = DiGraph(edges=[(0, 0)])
        assert g.has_edge(0, 0)
        assert g.number_of_edges() == 1

    def test_hashable_nodes(self):
        g = DiGraph(edges=[("a", "b"), (("t", 1), "b")])
        assert g.has_edge(("t", 1), "b")

    def test_complete(self):
        g = DiGraph.complete(range(4))
        assert g.number_of_edges() == 16  # includes self-loops

    def test_complete_no_self_loops(self):
        g = DiGraph.complete(range(4), self_loops=False)
        assert g.number_of_edges() == 12
        assert not g.has_edge(0, 0)


class TestMutation:
    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node(5)
        g.add_node(5)
        assert g.number_of_nodes() == 1

    def test_remove_edge(self):
        g = DiGraph(edges=[(0, 1)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.number_of_edges() == 0
        # nodes remain
        assert g.nodes() == frozenset({0, 1})

    def test_remove_missing_edge_raises(self):
        g = DiGraph(nodes=[0, 1])
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_discard_edge(self):
        g = DiGraph(edges=[(0, 1)])
        assert g.discard_edge(0, 1) is True
        assert g.discard_edge(0, 1) is False

    def test_remove_node_removes_incident_edges(self):
        g = DiGraph(edges=[(0, 1), (1, 2), (2, 0), (1, 1)])
        g.remove_node(1)
        assert g.nodes() == frozenset({0, 2})
        assert g.edges() == frozenset({(2, 0)})

    def test_remove_missing_node_raises(self):
        with pytest.raises(KeyError):
            DiGraph().remove_node(0)

    def test_discard_node(self):
        g = DiGraph(nodes=[0])
        assert g.discard_node(0) is True
        assert g.discard_node(0) is False

    def test_edge_count_consistency_after_churn(self):
        g = DiGraph()
        for i in range(10):
            g.add_edge(i, (i + 1) % 10)
        for i in range(0, 10, 2):
            g.remove_edge(i, (i + 1) % 10)
        assert g.number_of_edges() == 5
        assert len(g.edges()) == 5


class TestQueries:
    def test_successors_predecessors(self):
        g = DiGraph(edges=[(0, 1), (0, 2), (2, 1)])
        assert g.successors(0) == frozenset({1, 2})
        assert g.predecessors(1) == frozenset({0, 2})
        assert g.predecessors(0) == frozenset()

    def test_degrees(self):
        g = DiGraph(edges=[(0, 1), (0, 2), (2, 1)])
        assert g.out_degree(0) == 2
        assert g.in_degree(1) == 2
        assert g.in_degree(0) == 0

    def test_contains_iter_len(self):
        g = DiGraph(nodes=[0, 1, 2])
        assert 1 in g
        assert 7 not in g
        assert sorted(g) == [0, 1, 2]
        assert len(g) == 3

    def test_iter_edges_matches_edges(self):
        g = DiGraph(edges=[(0, 1), (1, 2), (2, 0)])
        assert frozenset(g.iter_edges()) == g.edges()


class TestSetOperations:
    def test_copy_is_independent(self):
        g = DiGraph(edges=[(0, 1)])
        h = g.copy()
        h.add_edge(1, 0)
        assert not g.has_edge(1, 0)
        assert h.has_edge(1, 0)

    def test_intersection_footnote3(self):
        # G ∩ G' = <V ∩ V', E ∩ E'> — footnote 3 of the paper.
        g = DiGraph(nodes=[0, 1, 2, 3], edges=[(0, 1), (1, 2)])
        h = DiGraph(nodes=[0, 1, 2], edges=[(0, 1), (2, 1)])
        i = g.intersection(h)
        assert i.nodes() == frozenset({0, 1, 2})
        assert i.edges() == frozenset({(0, 1)})

    def test_intersection_commutative(self):
        g = DiGraph(edges=[(0, 1), (1, 2), (2, 3)])
        h = DiGraph(edges=[(1, 2), (3, 2), (0, 1)])
        assert g.intersection(h) == h.intersection(g)

    def test_intersection_with_self_is_identity(self):
        g = DiGraph(edges=[(0, 1), (1, 0), (1, 1)])
        assert g.intersection(g) == g

    def test_union(self):
        g = DiGraph(edges=[(0, 1)])
        h = DiGraph(edges=[(1, 2)], nodes=[5])
        u = g.union(h)
        assert u.nodes() == frozenset({0, 1, 2, 5})
        assert u.edges() == frozenset({(0, 1), (1, 2)})

    def test_difference_edges(self):
        g = DiGraph(edges=[(0, 1), (1, 2)])
        h = DiGraph(edges=[(0, 1)])
        d = g.difference_edges(h)
        assert d.edges() == frozenset({(1, 2)})
        assert d.nodes() == g.nodes()

    def test_induced_subgraph(self):
        g = DiGraph(edges=[(0, 1), (1, 2), (2, 0), (0, 3)])
        s = g.induced_subgraph({0, 1, 3})
        assert s.nodes() == frozenset({0, 1, 3})
        assert s.edges() == frozenset({(0, 1), (0, 3)})

    def test_induced_subgraph_ignores_unknown_nodes(self):
        g = DiGraph(nodes=[0, 1])
        s = g.induced_subgraph({0, 99})
        assert s.nodes() == frozenset({0})

    def test_reversed(self):
        g = DiGraph(edges=[(0, 1), (1, 2)])
        r = g.reversed()
        assert r.edges() == frozenset({(1, 0), (2, 1)})
        assert r.reversed() == g

    def test_with_self_loops(self):
        g = DiGraph(nodes=[0, 1], edges=[(0, 1)])
        s = g.with_self_loops()
        assert s.has_edge(0, 0) and s.has_edge(1, 1)
        assert not g.has_edge(0, 0)  # original untouched

    def test_without_self_loops(self):
        g = DiGraph(edges=[(0, 0), (0, 1), (1, 1)])
        s = g.without_self_loops()
        assert s.edges() == frozenset({(0, 1)})
        assert s.nodes() == frozenset({0, 1})


class TestRelations:
    def test_subgraph_relation(self):
        g = DiGraph(edges=[(0, 1), (1, 2)])
        h = DiGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert h.is_subgraph_of(g)
        assert g.is_supergraph_of(h)
        assert not g.is_subgraph_of(h)

    def test_subgraph_requires_nodes(self):
        g = DiGraph(nodes=[0, 1])
        h = DiGraph(nodes=[0, 1, 2])
        assert g.is_subgraph_of(h)
        assert not h.is_subgraph_of(g)

    def test_equality(self):
        g = DiGraph(edges=[(0, 1), (1, 2)])
        h = DiGraph(edges=[(1, 2), (0, 1)])
        assert g == h
        h.add_node(9)
        assert g != h

    def test_equality_other_type(self):
        assert DiGraph() != 42

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DiGraph())

    def test_freeze(self):
        g = DiGraph(edges=[(0, 1)])
        snap = g.freeze()
        assert snap == (frozenset({0, 1}), frozenset({(0, 1)}))
        # frozen snapshots hash fine
        assert isinstance(hash(snap), int)


class TestSerialization:
    def test_roundtrip(self):
        g = DiGraph(nodes=[3], edges=[(0, 1), (1, 2)])
        h = DiGraph.from_dict(g.to_dict())
        assert g == h

    def test_to_dict_sorted(self):
        g = DiGraph(edges=[(2, 0), (0, 1)])
        d = g.to_dict()
        assert d["nodes"] == sorted(d["nodes"], key=repr)
        assert d["edges"] == sorted(d["edges"], key=repr)

    def test_repr(self):
        g = DiGraph(edges=[(0, 1)])
        assert "|V|=2" in repr(g) and "|E|=1" in repr(g)
