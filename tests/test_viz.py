"""Tests for ASCII and DOT rendering."""

from __future__ import annotations

from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import RoundLabeledDigraph
from repro.viz.ascii import (
    default_name,
    render_adjacency,
    render_edge_list,
    render_labeled,
)
from repro.viz.dot import labeled_to_dot, to_dot


class TestNames:
    def test_paper_style_names(self):
        assert default_name(0) == "p1"
        assert default_name(5) == "p6"
        assert default_name("x") == "x"


class TestEdgeList:
    def test_basic(self):
        g = DiGraph(edges=[(0, 1), (1, 0)])
        out = render_edge_list(g, title="T")
        assert out.splitlines()[0] == "T"
        assert "  p1 -> p2" in out
        assert "  p2 -> p1" in out

    def test_self_loops_omitted_by_default(self):
        g = DiGraph(edges=[(0, 0), (0, 1)])
        out = render_edge_list(g)
        assert "p1 -> p1" not in out
        out2 = render_edge_list(g, omit_self_loops=False)
        assert "p1 -> p1" in out2

    def test_empty(self):
        assert "(no edges)" in render_edge_list(DiGraph())

    def test_isolated_nodes_listed(self):
        g = DiGraph(nodes=[0, 1], edges=[(0, 0)])
        out = render_edge_list(g)
        assert "isolated" in out
        assert "p2" in out

    def test_deterministic(self):
        g = DiGraph(edges=[(2, 0), (0, 1), (1, 2)])
        assert render_edge_list(g) == render_edge_list(g.copy())


class TestLabeled:
    def test_labels_shown(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 4)])
        out = render_labeled(g, title="G")
        assert "p1 --4--> p2" in out

    def test_empty(self):
        assert "(no edges)" in render_labeled(RoundLabeledDigraph())

    def test_self_loop_omission(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 0, 1), (0, 1, 2)])
        assert "--1-->" not in render_labeled(g)


class TestAdjacency:
    def test_matrix_shape(self):
        g = DiGraph(nodes=range(3), edges=[(0, 1)])
        out = render_adjacency(g)
        lines = out.splitlines()
        assert len(lines) == 4  # header + 3 rows
        assert "1" in lines[1]

    def test_title(self):
        out = render_adjacency(DiGraph(nodes=[0]), title="M")
        assert out.splitlines()[0] == "M"


class TestDot:
    def test_digraph_dot(self):
        g = DiGraph(edges=[(0, 1)])
        out = to_dot(g, graph_name="Gr")
        assert out.startswith("digraph Gr {")
        assert '"p1" -> "p2";' in out
        assert out.rstrip().endswith("}")

    def test_self_loops_omitted(self):
        g = DiGraph(edges=[(0, 0), (0, 1)])
        assert '"p1" -> "p1"' not in to_dot(g)

    def test_labeled_dot(self):
        g = RoundLabeledDigraph(labeled_edges=[(0, 1, 7)])
        out = labeled_to_dot(g)
        assert '[label="7"]' in out

    def test_all_nodes_declared(self):
        g = DiGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        out = to_dot(g)
        for name in ("p1", "p2", "p3"):
            assert f'"{name}";' in out
