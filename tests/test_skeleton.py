"""Tests for the skeleton tracker and whole-run skeleton analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.static import ScheduleAdversary, StaticAdversary
from repro.core.algorithm import make_processes
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random
from repro.rounds.simulator import RoundSimulator, SimulationConfig
from repro.skeleton.analysis import (
    perpetual_timely_neighborhoods,
    root_component_history,
    skeleton_sequence,
    stabilization_round,
    stable_root_components,
    timely_neighborhoods_at,
)
from repro.skeleton.tracker import SkeletonTracker


class TestTracker:
    def test_initial_state(self):
        t = SkeletonTracker(3)
        assert t.round_no == 0
        assert t.skeleton == DiGraph.complete(range(3))

    def test_n_validated(self):
        with pytest.raises(ValueError):
            SkeletonTracker(0)

    def test_first_round_is_graph(self):
        g = DiGraph(nodes=range(3), edges=[(0, 1), (1, 1)])
        t = SkeletonTracker(3)
        assert t.observe(g) == g

    def test_wrong_nodes_rejected(self):
        t = SkeletonTracker(3)
        with pytest.raises(ValueError):
            t.observe(DiGraph(nodes=range(4)))

    def test_incremental_matches_batch(self):
        rng = np.random.default_rng(5)
        graphs = [gnp_random(7, 0.5, rng) for _ in range(6)]
        t = SkeletonTracker(7)
        expected = None
        for g in graphs:
            expected = g.copy() if expected is None else expected.intersection(g)
            assert t.observe(g) == expected

    def test_monotone_edge_counts(self):
        rng = np.random.default_rng(2)
        t = SkeletonTracker(8)
        for _ in range(10):
            t.observe(gnp_random(8, 0.6, rng))
        counts = t.edge_counts()
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_timely_neighborhood(self):
        t = SkeletonTracker(3)
        t.observe(DiGraph(nodes=range(3), edges=[(0, 1), (1, 1), (2, 1)]))
        t.observe(DiGraph(nodes=range(3), edges=[(0, 1), (1, 1)]))
        assert t.timely_neighborhood(1) == frozenset({0, 1})

    def test_stabilization_detection(self):
        stable = DiGraph(nodes=range(2), edges=[(0, 0), (1, 1), (0, 1)])
        t = SkeletonTracker(2, declared_stable=stable)
        t.observe(DiGraph.complete(range(2)))
        assert t.stabilized_at is None
        t.observe(stable)
        assert t.stabilized_at == 2
        t.observe(stable)
        assert t.stabilized_at == 2  # first hit is remembered

    def test_repr(self):
        assert "round=0" in repr(SkeletonTracker(2))


def grouped_run(n=8, m=2, seed=0, noise=0.2, max_rounds=40):
    adv = GroupedSourceAdversary(n, num_groups=m, seed=seed, noise=noise)
    procs = make_processes(n)
    run = RoundSimulator(
        procs, adv, SimulationConfig(max_rounds=max_rounds)
    ).run()
    return run, adv


class TestAnalysis:
    def test_skeleton_sequence_chain(self):
        run, _ = grouped_run()
        seq = skeleton_sequence(run)
        assert len(seq) == run.num_rounds
        for a, b in zip(seq, seq[1:]):
            assert a.is_supergraph_of(b)

    def test_stabilization_round_exact(self):
        run, adv = grouped_run(noise=0.3, max_rounds=60)
        r_st = stabilization_round(run)
        assert r_st is not None
        stable = adv.declared_stable_graph()
        assert run.skeleton(r_st) == stable
        if r_st > 1:
            assert run.skeleton(r_st - 1) != stable

    def test_stabilization_none_without_declaration(self):
        g = DiGraph.complete(range(2))

        class NoDecl(StaticAdversary):
            def declared_stable_graph(self):
                return None

        from repro.rounds.process import Process
        from repro.rounds.messages import Message

        class Quiet(Process):
            def send(self, r):
                return Message(sender=self.pid, round_no=r)

            def transition(self, r, received):
                pass

        adv = NoDecl(2, g)
        run = RoundSimulator(
            [Quiet(0, 2, 0), Quiet(1, 2, 1)],
            adv,
            SimulationConfig(max_rounds=2, stop_when_all_decided=False),
        ).run()
        assert stabilization_round(run) is None

    def test_timely_neighborhoods_at(self):
        run, _ = grouped_run()
        pts = timely_neighborhoods_at(run, 3)
        skel = run.skeleton(3)
        for p in range(run.n):
            assert pts[p] == skel.predecessors(p)

    def test_perpetual_timely_neighborhoods(self):
        run, adv = grouped_run()
        pts = perpetual_timely_neighborhoods(run)
        stable = adv.declared_stable_graph()
        for p in range(run.n):
            assert pts[p] == stable.predecessors(p)

    def test_stable_root_components_count(self):
        run, _ = grouped_run(n=9, m=3)
        assert len(stable_root_components(run)) == 3

    def test_root_component_history_refines(self):
        run, _ = grouped_run(noise=0.3)
        history = root_component_history(run)
        assert len(history) == run.num_rounds
        # all rounds have at least one root component (Lemma 11)
        assert all(len(roots) >= 1 for roots in history)

    def test_schedule_adversary_skeleton(self):
        # skeleton of a schedule run equals declared intersection
        g1 = DiGraph.complete(range(3))
        g2 = DiGraph(nodes=range(3), edges=[(0, 1), (0, 0), (1, 1), (2, 2)])
        adv = ScheduleAdversary(3, [g1], tail=g2)
        from repro.core.algorithm import make_processes as mp

        run = RoundSimulator(
            mp(3), adv, SimulationConfig(max_rounds=10)
        ).run()
        assert run.final_skeleton() == adv.declared_stable_graph()
