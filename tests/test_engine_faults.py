"""Deterministic fault injection: reconvergence to byte-identical
journals, torn-tail tolerance, bounded retry, graceful interrupts."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import faults as faults_module
from repro.engine.campaign import Campaign
from repro.engine.executor import retry_delay
from repro.engine.faults import FaultPlan, InjectedFault
from repro.engine.scenarios import ScenarioSpec
from repro.engine.store import ResultStore


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults_module.clear()
    yield
    faults_module.clear()


def _specs(count=6, n=5):
    return [
        ScenarioSpec(n=n, k=2, num_groups=2, seed=s, noise=0.1)
        for s in range(count)
    ]


def _summary_bytes(tmp_path, tag, specs, **run_kw):
    journal = tmp_path / f"{tag}.jsonl"
    summary = tmp_path / f"{tag}.summary.jsonl"
    campaign = Campaign(specs, store=str(journal), **run_kw.pop("campaign_kw", {}))
    campaign.run(**run_kw)
    campaign.write_summary(summary)
    return summary.read_bytes()


def _seed_with_victims(kind, rate, ids, want=1):
    """The smallest plan seed targeting at least ``want`` of ``ids``."""
    for seed in range(200):
        plan = FaultPlan(seed=seed, **{kind: rate})
        if len(plan.victims(kind, ids)) >= want:
            return seed, plan.victims(kind, ids)
    raise AssertionError("no seed found — loosen the rate")


# ----------------------------------------------------------------------
# Plan construction and determinism
# ----------------------------------------------------------------------
def test_parse_spec_round_trip():
    plan = FaultPlan.parse("seed=7, kill=0.25, torn=0.5, stall_s=3")
    assert plan.seed == 7
    assert plan.kill == 0.25
    assert plan.torn == 0.5
    assert plan.stall_s == 3.0
    assert plan.parent_pid == os.getpid()
    back = FaultPlan.from_json(plan.to_json())
    assert back == plan


def test_parse_rejects_bad_specs():
    with pytest.raises(ValueError, match="seed"):
        FaultPlan.parse("kill=0.5")
    with pytest.raises(ValueError, match="unknown fault spec key"):
        FaultPlan.parse("seed=1,explode=1.0")
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.parse("seed=1,torn")


def test_parse_default_ledger_applies_only_when_unset():
    plan = FaultPlan.parse("seed=1,kill=0.1", ledger="/tmp/x.ledger")
    assert plan.ledger == "/tmp/x.ledger"
    plan = FaultPlan.parse("seed=1,ledger=/other", ledger="/tmp/x.ledger")
    assert plan.ledger == "/other"


def test_victim_selection_is_pure_and_rate_scaled():
    ids = [spec.scenario_id for spec in _specs(40)]
    plan = FaultPlan(seed=3, kill=0.5)
    again = FaultPlan(seed=3, kill=0.5)
    assert plan.victims("kill", ids) == again.victims("kill", ids)
    assert FaultPlan(seed=3).victims("kill", ids) == []
    assert FaultPlan(seed=3, kill=1.0).victims("kill", ids) == ids
    # Different seeds draw different victim sets (with high probability
    # at rate 0.5 over 40 ids).
    assert plan.victims("kill", ids) != FaultPlan(
        seed=4, kill=0.5
    ).victims("kill", ids)


def test_ledger_makes_claims_once_only(tmp_path):
    ledger = tmp_path / "faults.ledger"
    plan = FaultPlan(seed=0, transient=1.0, ledger=str(ledger))
    assert plan.claim("transient", "abc") is True
    assert plan.claim("transient", "abc") is False
    assert plan.claim("transient", "def") is True
    # Without a ledger, faults fire on every encounter.
    free = FaultPlan(seed=0, transient=1.0)
    assert free.claim("transient", "abc") is True
    assert free.claim("transient", "abc") is True


def test_install_and_active_plan_round_trip():
    plan = FaultPlan.from_seed(5, transient=0.5).install()
    assert faults_module.active_plan() == plan
    faults_module.clear()
    assert faults_module.active_plan() is None


def test_worker_faults_never_fire_in_parent():
    # parent_pid == this pid, so the kill/stall/transient hook is inert
    # even at rate 1.0 — serial in-process runs are never killed.
    FaultPlan.from_seed(0, kill=1.0, transient=1.0).install()
    faults_module.before_scenario(_specs(1)[0])  # must not raise/exit


# ----------------------------------------------------------------------
# Deterministic retry backoff
# ----------------------------------------------------------------------
def test_retry_delay_is_deterministic_capped_and_growing():
    assert retry_delay("abc", 1) == retry_delay("abc", 1)
    assert retry_delay("abc", 1) != retry_delay("xyz", 1)
    for key in ("a", "b", "c"):
        delays = [retry_delay(key, attempt) for attempt in range(1, 12)]
        assert all(0.0 < d <= 2.0 for d in delays)
        assert delays[-1] == 2.0  # capped


# ----------------------------------------------------------------------
# Reconvergence: faulted runs end byte-identical to fault-free runs
# ----------------------------------------------------------------------
def test_transient_fault_retried_to_identical_summary(tmp_path):
    specs = _specs(6)
    ids = [s.scenario_id for s in specs]
    seed, victims = _seed_with_victims("transient", 0.4, ids)
    clean = _summary_bytes(tmp_path, "clean", specs, jobs=2)

    ledger = tmp_path / "transient.ledger"
    FaultPlan.from_seed(
        seed, transient=0.4, ledger=str(ledger)
    ).install()
    faulted = _summary_bytes(
        tmp_path, "faulted", specs, jobs=2,
        campaign_kw={"max_retries": 2},
    )
    assert faulted == clean
    fired = ledger.read_text().splitlines()
    assert sorted(fired) == sorted(
        f"transient:{sid}" for sid in victims
    )


def test_worker_kill_fault_retried_to_identical_summary(tmp_path):
    specs = _specs(6)
    ids = [s.scenario_id for s in specs]
    seed, victims = _seed_with_victims("kill", 0.3, ids)
    clean = _summary_bytes(tmp_path, "clean", specs, jobs=2)

    ledger = tmp_path / "kill.ledger"
    FaultPlan.from_seed(seed, kill=0.3, ledger=str(ledger)).install()
    faulted = _summary_bytes(
        tmp_path, "faulted", specs, jobs=2,
        campaign_kw={"max_retries": 2},
    )
    assert faulted == clean
    assert ledger.read_text().count("kill:") == len(victims)


def test_stall_fault_deadline_retried_to_identical_summary(tmp_path):
    specs = _specs(4, n=4)
    ids = [s.scenario_id for s in specs]
    seed, _ = _seed_with_victims("stall", 0.3, ids)
    clean = _summary_bytes(tmp_path, "clean", specs, jobs=2)

    ledger = tmp_path / "stall.ledger"
    FaultPlan.from_seed(
        seed, stall=0.3, stall_s=4.0, ledger=str(ledger)
    ).install()
    faulted = _summary_bytes(
        tmp_path, "faulted", specs, jobs=2, timeout=0.5,
        campaign_kw={"max_retries": 2},
    )
    assert faulted == clean


def test_torn_journal_write_heals_on_resume(tmp_path):
    specs = _specs(5)
    ids = [s.scenario_id for s in specs]
    seed, victims = _seed_with_victims("torn", 0.3, ids)
    clean = _summary_bytes(tmp_path, "clean", specs)

    journal = tmp_path / "faulted.jsonl"
    ledger = tmp_path / "torn.ledger"
    FaultPlan.from_seed(seed, torn=0.3, ledger=str(ledger)).install()
    # The torn appends crash the run (a writer killed mid-write); each
    # resume heals the tail, re-runs the victim, and continues.  One
    # crash per victim, then a clean completion.
    for _ in range(len(victims) + 1):
        campaign = Campaign(specs, store=str(journal))
        try:
            campaign.run()
            break
        except InjectedFault:
            continue
    summary = tmp_path / "faulted.summary.jsonl"
    campaign = Campaign(specs, store=str(journal))
    campaign.run()  # idempotent completion
    campaign.write_summary(summary)
    assert summary.read_bytes() == clean
    # The raw journal really does carry healed torn fragments.
    raw = journal.read_bytes()
    assert raw.endswith(b"\n")


def test_drop_meta_fault_tolerated_with_metrics(tmp_path):
    from repro.engine.telemetry import Recorder

    specs = _specs(6)
    clean = _summary_bytes(tmp_path, "clean", specs, jobs=2)
    FaultPlan.from_seed(0, drop_meta=1.0).install()
    recorder = Recorder()
    faulted = _summary_bytes(
        tmp_path, "faulted", specs, jobs=2, recorder=recorder
    )
    assert faulted == clean


# ----------------------------------------------------------------------
# Torn trailing line: byte-truncation regression (satellite 1)
# ----------------------------------------------------------------------
def test_store_tolerates_byte_truncated_tail(tmp_path, caplog):
    journal = tmp_path / "journal.jsonl"
    specs = _specs(3)
    store = ResultStore(str(journal))
    from repro.engine.executor import execute_scenario

    results = [execute_scenario(spec) for spec in specs]
    for result in results:
        store.append(result)
    full = journal.read_bytes()
    lines = full.splitlines(keepends=True)

    # Truncate the final line at every byte offset: load() must always
    # return the intact records and mark the torn scenario missing.
    last = lines[-1]
    prefix = b"".join(lines[:-1])
    # Note len(last) - 1 would cut only the newline, leaving complete
    # JSON — which correctly still parses; cut into the record proper.
    for cut in (1, len(last) // 2, len(last) - 2):
        journal.write_bytes(prefix + last[:cut])
        fresh = ResultStore(str(journal))
        with caplog.at_level("WARNING", logger="repro.engine.store"):
            loaded = fresh.load()
        assert set(loaded) == {r.scenario_id for r in results[:-1]}
        assert any("re-run on resume" in rec.message
                   for rec in caplog.records)
        caplog.clear()
        # Re-appending the missing record heals the tail: the rerun's
        # line must not glue onto the fragment.
        fresh.append(results[-1])
        healed = ResultStore(str(journal))
        assert set(healed.load()) == {r.scenario_id for r in results}


def test_resumed_campaign_reruns_only_torn_scenario(tmp_path):
    journal = tmp_path / "journal.jsonl"
    specs = _specs(4)
    campaign = Campaign(specs, store=str(journal))
    campaign.run()
    # Tear the final record mid-line.
    raw = journal.read_bytes()
    torn_at = raw.rstrip(b"\n").rfind(b"\n") + 1
    journal.write_bytes(raw[: torn_at + 10])

    resumed = Campaign(specs, store=str(journal))
    report = resumed.run()
    assert report.executed == 1
    assert report.skipped == len(specs) - 1
    assert resumed.status().succeeded


# ----------------------------------------------------------------------
# Bounded in-run retry flag plumbing (satellite 2)
# ----------------------------------------------------------------------
def test_campaign_threads_max_retries_to_executor(monkeypatch):
    import repro.engine.campaign as campaign_module

    seen = {}
    real = campaign_module.execute_scenarios

    def spy(*args, **kwargs):
        seen["max_retries"] = kwargs.get("max_retries")
        return real(*args, **kwargs)

    monkeypatch.setattr(campaign_module, "execute_scenarios", spy)
    Campaign(_specs(2), max_retries=3).run()
    assert seen["max_retries"] == 3
    # Per-run override wins over the constructor default.
    Campaign(_specs(2), max_retries=3).run(max_retries=1)
    assert seen["max_retries"] == 1


def test_cli_max_retries_flag_parses(tmp_path):
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["campaign", "run", "--store", str(tmp_path / "j.jsonl"),
         "--max-retries", "2", "--faults", "seed=1,transient=0.5",
         "--contracts"]
    )
    assert args.max_retries == 2
    assert args.faults == "seed=1,transient=0.5"
    assert args.contracts is True


# ----------------------------------------------------------------------
# Graceful SIGTERM (satellite 3)
# ----------------------------------------------------------------------
def test_campaign_run_sigterm_flushes_and_hints_resume(tmp_path):
    store = tmp_path / "journal.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[1] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run",
            "--store", str(store), "--no-progress", "--jobs", "2",
            "--timeout", "60",
            "-n", "14", "-k", "2", "--seeds", "60", "--noise", "0.1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    # Wait until at least one record is journaled, then interrupt.
    deadline = time.time() + 60
    while time.time() < deadline:
        if store.exists() and store.stat().st_size > 0:
            break
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    assert proc.poll() is None, (
        "campaign finished before SIGTERM could be delivered: "
        + proc.communicate()[1]
    )
    proc.send_signal(signal.SIGTERM)
    stdout, stderr = proc.communicate(timeout=60)
    assert proc.returncode == 1
    assert "interrupted" in stderr
    assert "re-run" in stderr and "resume" in stderr
    # The journal survived the interrupt and parses cleanly.
    loaded = ResultStore(str(store)).load()
    assert len(loaded) >= 1
    for result in loaded.values():
        assert result.ok
