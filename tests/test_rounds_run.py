"""Tests for the Run record and its skeleton accessors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random
from repro.rounds.process import DecisionRecord
from repro.rounds.run import Run, RoundRecord


def make_run(graphs, n=None, values=None, stable=None) -> Run:
    n = n or graphs[0].number_of_nodes()
    run = Run(n, values or list(range(n)), declared_stable_graph=stable)
    for idx, g in enumerate(graphs, start=1):
        run.append_round(RoundRecord(round_no=idx, graph=g))
    return run


class TestBasics:
    def test_initial_values_validated(self):
        with pytest.raises(ValueError):
            Run(3, [1, 2])

    def test_round_indexing(self):
        g1 = DiGraph.complete(range(2))
        g2 = DiGraph(nodes=range(2), edges=[(0, 0), (1, 1)])
        run = make_run([g1, g2])
        assert run.graph(1) == g1
        assert run.graph(2) == g2
        with pytest.raises(IndexError):
            run.graph(3)
        with pytest.raises(IndexError):
            run.graph(0)

    def test_rounds_must_be_contiguous(self):
        run = Run(2, [0, 1])
        with pytest.raises(ValueError):
            run.append_round(RoundRecord(round_no=2, graph=DiGraph(nodes=range(2))))

    def test_duplicate_decision_rejected(self):
        run = Run(2, [0, 1])
        g = DiGraph.complete(range(2))
        run.append_round(
            RoundRecord(1, g, decisions=[DecisionRecord(0, 1, 5)])
        )
        with pytest.raises(ValueError):
            run.append_round(
                RoundRecord(2, g, decisions=[DecisionRecord(0, 2, 5)])
            )

    def test_final_skeleton_empty_run_raises(self):
        with pytest.raises(ValueError):
            Run(2, [0, 1]).final_skeleton()


class TestSkeletons:
    def test_skeleton_is_prefix_intersection(self):
        rng = np.random.default_rng(0)
        graphs = [gnp_random(6, 0.5, rng) for _ in range(5)]
        run = make_run(graphs)
        expected = graphs[0]
        for r in range(1, 6):
            if r > 1:
                expected = expected.intersection(graphs[r - 1])
            assert run.skeleton(r) == expected

    def test_skeleton_chain_property(self):
        # Property (1): G^∩r ⊇ G^∩(r+1).
        rng = np.random.default_rng(1)
        run = make_run([gnp_random(8, 0.4, rng) for _ in range(6)])
        for r in range(1, 6):
            assert run.skeleton(r).is_supergraph_of(run.skeleton(r + 1))

    def test_stable_skeleton_prefers_declaration(self):
        g = DiGraph.complete(range(3))
        stable = DiGraph(nodes=range(3), edges=[(0, 0), (1, 1), (2, 2)])
        run = make_run([g, g], stable=stable)
        assert run.stable_skeleton() == stable
        assert run.final_skeleton() == g

    def test_stable_skeleton_fallback(self):
        g = DiGraph.complete(range(3))
        run = make_run([g])
        assert run.stable_skeleton() == g

    def test_timely_neighborhood(self):
        g1 = DiGraph(nodes=range(3), edges=[(0, 1), (2, 1), (1, 1)])
        g2 = DiGraph(nodes=range(3), edges=[(0, 1), (1, 1)])
        run = make_run([g1, g2])
        assert run.timely_neighborhood(1, 1) == frozenset({0, 1, 2})
        assert run.timely_neighborhood(1, 2) == frozenset({0, 1})

    def test_perpetual_timely_neighborhood(self):
        stable = DiGraph(nodes=range(2), edges=[(0, 0), (1, 1), (0, 1)])
        run = make_run([DiGraph.complete(range(2))], stable=stable)
        assert run.perpetual_timely_neighborhood(1) == frozenset({0, 1})

    def test_stabilization_round(self):
        big = DiGraph.complete(range(3))
        small = DiGraph(nodes=range(3), edges=[(0, 0), (1, 1), (2, 2), (0, 1)])
        run = make_run([big, big, small, small, small])
        assert run.skeleton_stabilization_round() == 3

    def test_stabilization_round_empty(self):
        assert Run(2, [0, 1]).skeleton_stabilization_round() is None

    def test_has_stabilized(self):
        stable = DiGraph(nodes=range(2), edges=[(0, 0), (1, 1)])
        run = Run(2, [0, 1], declared_stable_graph=stable)
        run.append_round(RoundRecord(1, DiGraph.complete(range(2))))
        assert not run.has_stabilized()
        run.append_round(RoundRecord(2, stable))
        assert run.has_stabilized()


class TestDecisions:
    def test_decision_accessors(self):
        g = DiGraph.complete(range(3))
        run = Run(3, [5, 6, 7])
        run.append_round(
            RoundRecord(1, g, decisions=[DecisionRecord(0, 1, 5)])
        )
        run.append_round(
            RoundRecord(2, g, decisions=[DecisionRecord(2, 2, 5)])
        )
        assert run.decision_values() == {5}
        assert run.decision_rounds() == {0: 1, 2: 2}
        assert not run.all_decided()
        assert run.undecided() == [1]

    def test_to_dict(self):
        g = DiGraph.complete(range(2))
        run = make_run([g])
        d = run.to_dict()
        assert d["n"] == 2
        assert d["num_rounds"] == 1
        assert len(d["graphs"]) == 1

    def test_repr(self):
        g = DiGraph.complete(range(2))
        run = make_run([g])
        assert "n=2" in repr(run)
