"""Tests for skeleton-realizing adversaries, including the structural
guarantee (decisions track root components, beyond what Psrcs promises)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.synthesis import SkeletonRealizingAdversary
from repro.analysis.properties import check_agreement_properties
from repro.core.invariants import make_invariant_hook
from repro.experiments.duality import chain_skeleton, duality_profile
from repro.experiments.sweeps import run_algorithm1
from repro.graphs.condensation import count_root_components, root_components
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random


class TestSynthesis:
    def test_nodes_validated(self):
        with pytest.raises(ValueError):
            SkeletonRealizingAdversary(DiGraph(nodes=[1, 2]))

    def test_parameters_validated(self):
        target = DiGraph(nodes=range(3))
        with pytest.raises(ValueError):
            SkeletonRealizingAdversary(target, noise=2.0)
        with pytest.raises(ValueError):
            SkeletonRealizingAdversary(target, quiet_period=0)
        adv = SkeletonRealizingAdversary(target)
        with pytest.raises(ValueError):
            adv.graph(0)

    def test_declared_is_target_with_loops(self):
        target = DiGraph(nodes=range(3), edges=[(0, 1)])
        adv = SkeletonRealizingAdversary(target)
        stable = adv.declared_stable_graph()
        assert stable.has_edge(0, 1)
        assert all(stable.has_edge(p, p) for p in range(3))

    def test_stable_edges_every_round(self):
        target = gnp_random(6, 0.3, np.random.default_rng(1))
        adv = SkeletonRealizingAdversary(target, noise=0.4, seed=2)
        stable = adv.declared_stable_graph()
        for r in range(1, 20):
            g = adv.graph(r)
            assert stable.is_subgraph_of(g)

    def test_declaration_exact_over_prefix(self):
        target = gnp_random(6, 0.3, np.random.default_rng(3))
        adv = SkeletonRealizingAdversary(target, noise=0.5, seed=4)
        inter = adv.graph(1)
        for r in range(2, 30):
            inter = inter.intersection(adv.graph(r))
        assert inter == adv.declared_stable_graph()


class TestStructuralGuarantee:
    """Algorithm 1's achieved agreement tracks rc(G), not α(H)."""

    def test_chain_reaches_consensus_despite_huge_alpha(self):
        # Directed chain: α = ⌈n/2⌉ (Psrcs very weak) but rc = 1 —
        # Algorithm 1 must reach a single decision value.
        n = 8
        adv = SkeletonRealizingAdversary(chain_skeleton(n), noise=0.0)
        run = run_algorithm1(adv, max_rounds=8 * n)
        profile = duality_profile(run.stable_skeleton())
        assert profile.root_components == 1
        assert profile.alpha == n // 2
        assert run.all_decided()
        assert len(run.decision_values()) == 1

    def test_chain_with_noise(self):
        n = 7
        adv = SkeletonRealizingAdversary(
            chain_skeleton(n), noise=0.25, seed=5
        )
        run = run_algorithm1(
            adv, max_rounds=8 * n, invariant_hooks=[make_invariant_hook()]
        )
        assert run.all_decided()
        assert len(run.decision_values()) == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_random_skeletons_decisions_bounded_by_roots(self, seed):
        target = gnp_random(8, 0.15, np.random.default_rng(seed),
                            self_loops=True)
        adv = SkeletonRealizingAdversary(target, noise=0.2, seed=seed)
        run = run_algorithm1(adv, max_rounds=80)
        roots = count_root_components(run.stable_skeleton())
        assert run.all_decided()
        assert len(run.decision_values()) <= roots

    def test_each_root_component_contributes_at_most_one_value(self):
        target = gnp_random(9, 0.1, np.random.default_rng(11),
                            self_loops=True)
        adv = SkeletonRealizingAdversary(target, noise=0.0)
        run = run_algorithm1(adv, max_rounds=90)
        assert run.all_decided()
        # Lemma 14: within one root component all decisions agree.
        for comp in root_components(run.stable_skeleton()):
            values = {run.decisions[p].value for p in comp}
            assert len(values) == 1

    def test_validity_and_lemmas_on_arbitrary_skeletons(self):
        for seed in range(4):
            target = gnp_random(7, 0.2, np.random.default_rng(seed + 50),
                                self_loops=True)
            adv = SkeletonRealizingAdversary(target, noise=0.3, seed=seed)
            run = run_algorithm1(
                adv, max_rounds=70, invariant_hooks=[make_invariant_hook()]
            )
            report = check_agreement_properties(run, run.n)
            assert report.validity.holds
            assert report.termination.holds
