"""Boot a real ``campaign serve`` daemon for tests, with guaranteed
teardown.

The harness runs the daemon exactly as a user would — ``python -m repro
campaign serve`` in a subprocess on an ephemeral port — waits for
``/healthz``, and yields a :class:`DaemonHandle` wrapping the live
process and a :class:`~repro.engine.service.ServiceClient`.  Teardown
(SIGTERM, bounded wait, SIGKILL escalation) runs even when the test
body raises, so a failing assertion can never leave a daemon wedging
the suite.

Usage::

    from daemon_harness import daemon

    def test_something(tmp_path):
        with daemon(tmp_path) as d:
            job = d.client.submit({...})
            ...

All tests using this module must carry the ``daemon`` marker (see
``pytest.ini``), which arms a per-test SIGALRM timeout so a hung daemon
fails the test fast instead of hanging the run.
"""

from __future__ import annotations

import contextlib
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.engine.service import ServiceClient, ServiceError

STARTUP_TIMEOUT = 30.0
SHUTDOWN_TIMEOUT = 30.0


def repro_env(extra: dict | None = None) -> dict:
    """A subprocess environment that can ``import repro``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[1] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    if extra:
        env.update(extra)
    return env


class DaemonHandle:
    """One live daemon subprocess plus its HTTP client."""

    def __init__(
        self, proc: subprocess.Popen, client: ServiceClient,
        url: str, spool: Path,
    ) -> None:
        self.proc = proc
        self.client = client
        self.url = url
        self.spool = spool
        self.stdout: str | None = None
        self.stderr: str | None = None
        self.returncode: int | None = None

    def stop(
        self, sig: int = signal.SIGTERM, timeout: float = SHUTDOWN_TIMEOUT
    ) -> int:
        """Signal the daemon and wait; returns its exit code.  Captured
        stdout/stderr land on ``self.stdout`` / ``self.stderr``."""
        if self.proc.poll() is None:
            self.proc.send_signal(sig)
        try:
            self.stdout, self.stderr = self.proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.stdout, self.stderr = self.proc.communicate(timeout=10)
        self.returncode = self.proc.returncode
        return self.returncode


@contextlib.contextmanager
def daemon(
    tmp_path: Path,
    jobs: int = 2,
    slots: int = 2,
    extra_args: tuple[str, ...] = (),
    env_extra: dict | None = None,
    startup_timeout: float = STARTUP_TIMEOUT,
):
    """Boot ``campaign serve`` on an ephemeral port; yield a
    :class:`DaemonHandle`; always tear the subprocess down."""
    port_file = tmp_path / "daemon.url"
    spool = tmp_path / "spool"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--jobs", str(jobs), "--slots", str(slots),
            "--spool", str(spool), *extra_args,
        ],
        env=repro_env(env_extra),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    handle: DaemonHandle | None = None
    try:
        deadline = time.monotonic() + startup_timeout
        url = None
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                out, err = proc.communicate()
                raise RuntimeError(
                    f"daemon exited during startup (rc {proc.returncode}):\n"
                    f"{err}"
                )
            if port_file.exists():
                text = port_file.read_text().strip()
                if text:
                    url = text
                    break
            time.sleep(0.05)
        if url is None:
            raise RuntimeError(
                f"daemon wrote no port file within {startup_timeout:.0f}s"
            )
        client = ServiceClient(url)
        while time.monotonic() < deadline:
            try:
                if client.health().get("ok"):
                    break
            except ServiceError:
                time.sleep(0.05)
        else:
            raise RuntimeError(f"daemon at {url} never became healthy")
        handle = DaemonHandle(proc, client, url, spool)
        yield handle
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                out, err = proc.communicate(timeout=SHUTDOWN_TIMEOUT)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, err = proc.communicate(timeout=10)
            if handle is not None and handle.stdout is None:
                handle.stdout, handle.stderr = out, err
                handle.returncode = proc.returncode
