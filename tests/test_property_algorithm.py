"""Property-based end-to-end tests: random adversaries, full lemma-checker
instrumentation, and the paper's top-level guarantees."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.crash import CrashAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.mobile import MobileOmissionAdversary
from repro.analysis.properties import check_agreement_properties
from repro.analysis.stats import decision_stats
from repro.core.algorithm import make_processes
from repro.core.invariants import make_invariant_hook
from repro.graphs.condensation import count_root_components, root_components
from repro.predicates.psrcs import Psrcs
from repro.rounds.simulator import RoundSimulator, SimulationConfig


@st.composite
def grouped_configs(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    m = draw(st.integers(min_value=1, max_value=min(4, n)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    noise = draw(st.sampled_from([0.0, 0.1, 0.3, 0.5]))
    topology = draw(st.sampled_from(["star", "cycle", "clique"]))
    return n, m, seed, noise, topology


class TestTheorem16Property:
    @given(grouped_configs())
    @settings(max_examples=25, deadline=None)
    def test_k_set_agreement_with_all_lemmas(self, config):
        n, m, seed, noise, topology = config
        adv = GroupedSourceAdversary(
            n, num_groups=m, seed=seed, noise=noise, topology=topology
        )
        procs = make_processes(n)
        run = RoundSimulator(
            procs,
            adv,
            SimulationConfig(max_rounds=6 * n + 20),
            invariant_hooks=[make_invariant_hook()],
        ).run()
        # Psrcs(m) holds by construction; Theorem 16 gives m-agreement.
        report = check_agreement_properties(run, m)
        assert report.all_hold, report.summary()
        # Theorem 1.
        assert count_root_components(run.stable_skeleton()) <= m
        # Lemma 11's bound.
        stats = decision_stats(run)
        assert stats.within_bound

    @given(grouped_configs())
    @settings(max_examples=15, deadline=None)
    def test_decision_values_map_to_root_components(self, config):
        # Lemma 15's one-to-one correspondence: every decided value is the
        # estimate of some root component; with distinct inputs, distinct
        # decision values come from distinct root components.
        n, m, seed, noise, topology = config
        adv = GroupedSourceAdversary(
            n, num_groups=m, seed=seed, noise=noise, topology=topology
        )
        run = RoundSimulator(
            make_processes(n), adv, SimulationConfig(max_rounds=6 * n + 20)
        ).run()
        roots = root_components(run.stable_skeleton())
        # Each decision value must be <= the max value of some root
        # component's reachable input set; specifically each value is an
        # input of some process (validity) and the number of values is
        # bounded by the number of root components.
        assert len(run.decision_values()) <= len(roots)


@st.composite
def crash_configs(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    f = draw(st.integers(min_value=0, max_value=n - 1))
    crash_pids = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            max_size=f,
            unique=True,
        ).filter(lambda lst: len(lst) < n)
    )
    rounds = {
        pid: draw(st.integers(min_value=1, max_value=2 * n)) for pid in crash_pids
    }
    seed = draw(st.integers(min_value=0, max_value=1000))
    return n, rounds, seed


class TestCrashProperty:
    @given(crash_configs())
    @settings(max_examples=25, deadline=None)
    def test_consensus_under_crashes(self, config):
        # The stable skeleton of any crash run has one root component
        # (survivors' clique), so Algorithm 1 must reach consensus.
        n, rounds, seed = config
        adv = CrashAdversary(n, rounds, seed=seed)
        run = RoundSimulator(
            make_processes(n),
            adv,
            SimulationConfig(max_rounds=6 * n + 20),
            invariant_hooks=[make_invariant_hook()],
        ).run()
        report = check_agreement_properties(run, 1)
        assert report.all_hold, report.summary()


@st.composite
def graph_sequences(draw):
    """Fully arbitrary per-round communication graphs (self-loops added by
    the simulator): the harshest possible network."""
    n = draw(st.integers(min_value=2, max_value=7))
    rounds = draw(st.integers(min_value=1, max_value=8))
    seqs = []
    for _ in range(rounds):
        edges = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=n * n,
            )
        )
        seqs.append(edges)
    return n, seqs


class TestArbitrarySequences:
    """Algorithm 1 against fully arbitrary graph sequences: validity and
    every approximation lemma must hold (termination and k-agreement need
    a predicate, so they are not asserted)."""

    @given(graph_sequences())
    @settings(max_examples=30, deadline=None)
    def test_lemmas_and_validity_universal(self, data):
        from repro.adversaries.base import ReplayAdversary
        from repro.graphs.digraph import DiGraph

        n, seqs = data
        graphs = [DiGraph(nodes=range(n), edges=edges) for edges in seqs]
        adv = ReplayAdversary(n, graphs)
        run = RoundSimulator(
            make_processes(n),
            adv,
            SimulationConfig(
                max_rounds=len(graphs) + 2 * n + 2,
                stop_when_all_decided=False,
            ),
            invariant_hooks=[make_invariant_hook()],
        ).run()
        assert check_agreement_properties(run, n).validity.holds
        # decided processes never decide before round n+1 (line 28 guard +
        # Lemma 13's chain back to a line-29 decision)
        for d in run.decisions.values():
            assert d.round_no >= n + 1


class TestApproximationUniversality:
    """Lemmas 3–8 hold in ALL runs — even without any Psrcs guarantee."""

    @given(
        st.integers(min_value=3, max_value=9),
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_mobile_omission_runs(self, n, omissions, seed):
        adv = MobileOmissionAdversary(n, per_round_omissions=omissions, seed=seed)
        run = RoundSimulator(
            make_processes(n),
            adv,
            SimulationConfig(max_rounds=4 * n, stop_when_all_decided=False),
            invariant_hooks=[make_invariant_hook()],
        ).run()
        # validity of whatever decisions happened
        assert check_agreement_properties(run, n).validity.holds
