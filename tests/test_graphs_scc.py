"""SCC tests: unit cases, cross-validation of Tarjan vs Kosaraju vs
networkx, and hypothesis property tests."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gnp_random
from repro.graphs.scc import (
    is_strongly_connected,
    kosaraju_scc,
    scc_of,
    strongly_connected_components,
    tarjan_scc,
)
from tests.conftest import to_networkx


def as_partition(components) -> frozenset[frozenset]:
    return frozenset(frozenset(c) for c in components)


class TestBasicCases:
    def test_empty_graph(self):
        assert tarjan_scc(DiGraph()) == []
        assert kosaraju_scc(DiGraph()) == []

    def test_single_node(self):
        g = DiGraph(nodes=[0])
        assert as_partition(tarjan_scc(g)) == frozenset({frozenset({0})})

    def test_self_loop_is_singleton_scc(self):
        g = DiGraph(edges=[(0, 0)])
        assert as_partition(tarjan_scc(g)) == frozenset({frozenset({0})})

    def test_two_node_cycle(self):
        g = DiGraph(edges=[(0, 1), (1, 0)])
        assert as_partition(tarjan_scc(g)) == frozenset({frozenset({0, 1})})

    def test_dag_all_singletons(self, diamond):
        comps = tarjan_scc(diamond)
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 4

    def test_two_disjoint_cycles(self, two_cycles):
        assert as_partition(tarjan_scc(two_cycles)) == frozenset(
            {frozenset({0, 1, 2}), frozenset({3, 4, 5})}
        )

    def test_cycle_with_tail(self):
        g = DiGraph(edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        parts = as_partition(tarjan_scc(g))
        assert frozenset({0, 1, 2}) in parts
        assert frozenset({3}) in parts and frozenset({4}) in parts

    def test_every_node_in_exactly_one_component(self, rng):
        g = gnp_random(30, 0.1, rng)
        comps = tarjan_scc(g)
        seen = [node for c in comps for node in c]
        assert sorted(seen) == sorted(g.nodes())

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            strongly_connected_components(DiGraph(), algorithm="magic")

    def test_tarjan_reverse_topological_order(self):
        # edge 0 -> 1: component {1} must appear before {0} in Tarjan order.
        g = DiGraph(edges=[(0, 1)])
        comps = tarjan_scc(g)
        assert comps.index(frozenset({1})) < comps.index(frozenset({0}))

    def test_kosaraju_topological_order(self):
        g = DiGraph(edges=[(0, 1)])
        comps = kosaraju_scc(g)
        assert comps.index(frozenset({0})) < comps.index(frozenset({1}))

    def test_deep_path_no_recursion_error(self):
        # 3000-node path: the iterative implementations must not blow the
        # Python stack.
        n = 3000
        g = DiGraph(edges=[(i, i + 1) for i in range(n - 1)])
        assert len(tarjan_scc(g)) == n
        assert len(kosaraju_scc(g)) == n


class TestSccOf:
    def test_matches_full_decomposition(self, rng):
        g = gnp_random(25, 0.12, rng)
        comps = {frozenset(c) for c in tarjan_scc(g)}
        for node in g.nodes():
            assert scc_of(g, node) in comps
            assert node in scc_of(g, node)

    def test_missing_node_raises(self):
        with pytest.raises(KeyError):
            scc_of(DiGraph(), 0)


class TestIsStronglyConnected:
    def test_empty_graph_true(self):
        assert is_strongly_connected(DiGraph())

    def test_single_node_true(self):
        # Required by Theorem 2: isolated processes must pass the line-28
        # test on their singleton approximation.
        assert is_strongly_connected(DiGraph(nodes=[0]))
        assert is_strongly_connected(DiGraph(edges=[(0, 0)]))

    def test_cycle_true(self):
        g = DiGraph(edges=[(0, 1), (1, 2), (2, 0)])
        assert is_strongly_connected(g)

    def test_dag_false(self, diamond):
        assert not is_strongly_connected(diamond)

    def test_disconnected_false(self, two_cycles):
        assert not is_strongly_connected(two_cycles)

    def test_one_way_pair_false(self):
        assert not is_strongly_connected(DiGraph(edges=[(0, 1)]))


class TestOracles:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("p", [0.02, 0.08, 0.2, 0.5])
    def test_against_networkx(self, seed, p):
        rng = np.random.default_rng(seed)
        g = gnp_random(24, p, rng)
        ours = as_partition(tarjan_scc(g))
        theirs = frozenset(
            frozenset(c) for c in nx.strongly_connected_components(to_networkx(g))
        )
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(8))
    def test_tarjan_equals_kosaraju(self, seed):
        rng = np.random.default_rng(seed + 100)
        g = gnp_random(40, 0.07, rng)
        assert as_partition(tarjan_scc(g)) == as_partition(kosaraju_scc(g))


@st.composite
def small_digraphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=60,
        )
    )
    return DiGraph(nodes=range(n), edges=edges)


class TestProperties:
    @given(small_digraphs())
    @settings(max_examples=120, deadline=None)
    def test_partition_property(self, g):
        comps = tarjan_scc(g)
        flat = [v for c in comps for v in c]
        assert sorted(flat, key=repr) == sorted(g.nodes(), key=repr)

    @given(small_digraphs())
    @settings(max_examples=120, deadline=None)
    def test_tarjan_kosaraju_agree(self, g):
        assert as_partition(tarjan_scc(g)) == as_partition(kosaraju_scc(g))

    @given(small_digraphs())
    @settings(max_examples=80, deadline=None)
    def test_components_are_strongly_connected(self, g):
        for comp in tarjan_scc(g):
            sub = g.induced_subgraph(comp)
            assert is_strongly_connected(sub)

    @given(small_digraphs())
    @settings(max_examples=80, deadline=None)
    def test_components_are_maximal(self, g):
        # Merging any two distinct components must not be strongly connected.
        comps = tarjan_scc(g)
        for i in range(len(comps)):
            for j in range(i + 1, len(comps)):
                merged = g.induced_subgraph(comps[i] | comps[j])
                assert not is_strongly_connected(merged)
