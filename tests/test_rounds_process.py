"""Tests for the Process base class and decision bookkeeping."""

from __future__ import annotations

import pytest

from repro.rounds.messages import Message
from repro.rounds.process import DecisionRecord, Process


class EchoProcess(Process):
    """Minimal concrete process for base-class tests."""

    def send(self, round_no: int) -> Message:
        return Message(sender=self.pid, round_no=round_no, payload=self.initial_value)

    def transition(self, round_no, received) -> None:
        pass

    def decide_now(self, round_no, value):
        self._decide(round_no, value)


class TestProcess:
    def test_pid_range_validated(self):
        with pytest.raises(ValueError):
            EchoProcess(pid=5, n=3, initial_value=0)
        with pytest.raises(ValueError):
            EchoProcess(pid=-1, n=3, initial_value=0)

    def test_initially_undecided(self):
        p = EchoProcess(0, 2, "v")
        assert not p.decided
        assert p.decision is None

    def test_decide_records(self):
        p = EchoProcess(0, 2, "v")
        p.decide_now(4, "w")
        assert p.decided
        assert p.decision == DecisionRecord(process=0, round_no=4, value="w")

    def test_double_decide_raises(self):
        # Lemma 10 enforced structurally.
        p = EchoProcess(0, 2, "v")
        p.decide_now(4, "w")
        with pytest.raises(RuntimeError, match="decide twice"):
            p.decide_now(5, "u")

    def test_snapshot_undecided(self):
        p = EchoProcess(1, 2, "v")
        snap = p.state_snapshot()
        assert snap["pid"] == 1
        assert snap["decided"] is False
        assert snap["decision"] is None

    def test_snapshot_decided(self):
        p = EchoProcess(1, 2, "v")
        p.decide_now(3, 9)
        snap = p.state_snapshot()
        assert snap["decision"] == {"round": 3, "value": 9}

    def test_repr(self):
        p = EchoProcess(0, 2, "v")
        assert "undecided" in repr(p)
        p.decide_now(1, 5)
        assert "decided=5@r1" in repr(p)
