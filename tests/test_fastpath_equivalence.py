"""Backend equivalence: the vectorized fast path vs the reference simulator.

The fast path's contract is *exactness*, not approximation: for every
scenario it supports, all summary metrics — decision rounds, distinct
decision values, violation flags, stabilization, Lemma-11 bounds — must
equal the reference :class:`~repro.rounds.simulator.RoundSimulator` result
bit for bit, which this suite asserts via the canonical JSON line (one
comparison covering every metric field at once).  A randomized grid sweeps
``n ∈ 2..12``, all three registry adversary families, noise levels,
topologies, seeds and Algorithm 1's ablation knobs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.base import RecordedAdversary
from repro.adversaries.crash import CrashAdversary
from repro.adversaries.eventual import EventuallyGoodAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.adversaries.static import StaticAdversary
from repro.engine.backends import (
    BACKEND_AUTO,
    BACKEND_REFERENCE,
    BACKEND_VECTORIZED,
    execute_scenario_vectorized,
    execute_scenario_with_backend,
    fastpath_supported,
)
from repro.engine.campaign import Campaign
from repro.engine.executor import execute_scenario, execute_scenarios
from repro.engine.scenarios import ScenarioGrid, ScenarioSpec, termination_grid
from repro.engine.store import canonical_line, decode_result, journal_line
from repro.graphs.generators import to_adjacency
from repro.rounds.fastpath import FastPathUnsupported, simulate_fastpath


def assert_equivalent(spec: ScenarioSpec) -> None:
    reference = execute_scenario(spec)
    vectorized = execute_scenario_vectorized(spec)
    assert reference.status == "ok", reference.error
    assert vectorized.status == "ok", vectorized.error
    # One line covers every metric field and the decision values.
    assert canonical_line(reference) == canonical_line(vectorized)


class TestScenarioEquivalence:
    GROUPED = [
        ScenarioSpec(
            n=n, k=k, num_groups=m, seed=seed, noise=noise, topology=topology
        )
        for n in (2, 3, 5, 7, 9, 12)
        for k, m in ((1, 1), (2, 2), (3, 2), (3, 3))
        if m <= min(k, n) and k < n
        for seed in (0, 1)
        for noise, topology in (
            (0.0, "cycle"),
            (0.2, "cycle"),
            (0.35, "star"),
            (0.15, "clique"),
        )
    ]

    @pytest.mark.parametrize(
        "spec", GROUPED, ids=lambda s: s.scenario_id
    )
    def test_grouped_family(self, spec):
        assert_equivalent(spec)

    @pytest.mark.parametrize("n,f", [(3, 1), (5, 2), (8, 3), (11, 4)])
    def test_crash_family(self, n, f):
        assert_equivalent(
            ScenarioSpec(n=n, k=2, adversary="crash", options=(("f", f),))
        )

    @pytest.mark.parametrize("n,k", [(4, 2), (6, 3), (9, 4), (12, 5)])
    def test_partition_family(self, n, k):
        assert_equivalent(
            ScenarioSpec(
                n=n, k=k, adversary="partition", options=(("k_env", k),)
            )
        )

    @pytest.mark.parametrize("purge_window", [2, 4, 9])
    @pytest.mark.parametrize("prune_unreachable", [True, False])
    def test_ablation_knobs(self, purge_window, prune_unreachable):
        assert_equivalent(
            ScenarioSpec(
                n=9,
                k=3,
                num_groups=3,
                seed=1,
                noise=0.25,
                options=(
                    ("prune_unreachable", prune_unreachable),
                    ("purge_window", purge_window),
                ),
            )
        )

    def test_quiet_period_knob(self):
        assert_equivalent(
            ScenarioSpec(
                n=8, k=2, num_groups=2, seed=3, noise=0.4,
                options=(("quiet_period", 3),),
            )
        )

    def test_max_rounds_cap_respected(self):
        # A tight cap can stop the run before everyone decided; both
        # backends must report the identical truncated prefix.
        assert_equivalent(
            ScenarioSpec(n=9, k=1, num_groups=1, seed=0, max_rounds=4)
        )

    def test_chunked_merge_buffer_path(self, monkeypatch):
        # Large n processes the lines-14-23 merge in owner blocks to cap
        # the (owners, n, n, n) intermediate; force the multi-block path
        # on a small scenario and require identical results.
        import repro.rounds.fastpath as fastpath_module

        monkeypatch.setattr(fastpath_module, "_MERGE_BUF_BYTES", 1)
        assert_equivalent(
            ScenarioSpec(n=7, k=2, num_groups=2, seed=4, noise=0.2)
        )


class TestCampaignEquivalence:
    GRID = ScenarioGrid(
        n=[4, 6, 8],
        k=[2, 3],
        num_groups=[1, 2],
        seed=range(3),
        noise=[0.0, 0.2],
        where=[lambda s: s["k"] < s["n"]],
    )

    def test_summaries_byte_identical_across_backends(self, tmp_path):
        paths = {}
        for backend in (BACKEND_REFERENCE, BACKEND_VECTORIZED):
            campaign = Campaign(
                self.GRID,
                store=tmp_path / f"journal_{backend}.jsonl",
                backend=backend,
            )
            report = campaign.run()
            assert report.errors == 0 and report.timeouts == 0
            summary = tmp_path / f"summary_{backend}.jsonl"
            campaign.write_summary(summary)
            paths[backend] = summary.read_bytes()
        assert paths[BACKEND_REFERENCE] == paths[BACKEND_VECTORIZED]

    def test_journal_records_tag_backend_but_summary_does_not(self, tmp_path):
        store = tmp_path / "journal.jsonl"
        campaign = Campaign(
            ScenarioGrid(n=[4], k=[2], num_groups=[2], seed=[0]),
            store=store,
            backend=BACKEND_VECTORIZED,
        )
        campaign.run()
        journal_record = store.read_text().strip()
        assert '"backend":"vectorized"' in journal_record
        summary = tmp_path / "summary.jsonl"
        campaign.write_summary(summary)
        assert '"backend"' not in summary.read_text()
        # The decoded record keeps the provenance.
        assert campaign.completed_results()[0].backend == "vectorized"

    def test_resume_across_backends(self, tmp_path):
        # A journal written by one backend satisfies resume for the other
        # (content-hash ids and metrics agree), so nothing re-executes.
        store = tmp_path / "journal.jsonl"
        grid = ScenarioGrid(n=[4, 5], k=[2], num_groups=[2], seed=range(2))
        Campaign(grid, store=store, backend=BACKEND_VECTORIZED).run()
        report = Campaign(grid, store=store, backend=BACKEND_REFERENCE).run()
        assert report.executed == 0
        assert report.skipped == report.total

    def test_execute_scenarios_backend_parallel_matches_serial(self):
        specs = termination_grid(ns=[4, 6], seeds=range(3), noise=0.2)
        serial = execute_scenarios(specs, jobs=1, backend=BACKEND_VECTORIZED)
        parallel = execute_scenarios(specs, jobs=2, backend=BACKEND_VECTORIZED)
        assert [canonical_line(r) for r in serial] == [
            canonical_line(r) for r in parallel
        ]


class TestBackendDispatch:
    UNSUPPORTED = ScenarioSpec(
        n=5, k=2, adversary="crash", algorithm="floodmin",
        options=(("f", 1),),
    )

    def test_vectorized_raises_for_unsupported_algorithm(self):
        assert not fastpath_supported(self.UNSUPPORTED)
        with pytest.raises(FastPathUnsupported):
            execute_scenario_vectorized(self.UNSUPPORTED)

    def test_auto_falls_back_to_reference(self):
        result = execute_scenario_with_backend(self.UNSUPPORTED, BACKEND_AUTO)
        assert result.status == "ok"
        assert result.backend == "reference"
        assert canonical_line(result) == canonical_line(
            execute_scenario(self.UNSUPPORTED)
        )

    def test_auto_uses_fastpath_when_supported(self):
        spec = ScenarioSpec(n=5, k=2, num_groups=2, seed=1)
        result = execute_scenario_with_backend(spec, BACKEND_AUTO)
        assert result.backend == "vectorized"
        assert result.status == "ok"

    def test_forced_vectorized_reports_unsupported_as_error(self):
        result = execute_scenario_with_backend(
            self.UNSUPPORTED, BACKEND_VECTORIZED
        )
        assert result.status == "error"
        assert "FastPathUnsupported" in result.error
        assert result.backend == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            execute_scenario_with_backend(
                ScenarioSpec(n=4, k=2), "warp-drive"
            )

    def test_non_integer_proposals_unsupported(self):
        adv = GroupedSourceAdversary(3, num_groups=1)
        with pytest.raises(FastPathUnsupported):
            simulate_fastpath(
                adv.adjacency_stack, ["a", "b", "c"], max_rounds=10
            )

    def test_journal_line_round_trips_backend(self):
        spec = ScenarioSpec(n=4, k=2, num_groups=2, seed=0)
        result = execute_scenario_vectorized(spec)
        decoded = decode_result(
            __import__("json").loads(journal_line(result))
        )
        assert decoded.backend == "vectorized"
        assert canonical_line(decoded) == canonical_line(result)


class TestAdjacencyStack:
    """Determinism and exactness of the adversaries' batch schedule API."""

    FACTORIES = {
        "grouped": lambda: GroupedSourceAdversary(
            7, num_groups=3, seed=5, noise=0.3, quiet_period=4
        ),
        "grouped-quiet": lambda: GroupedSourceAdversary(
            5, num_groups=2, seed=2, noise=0.0
        ),
        "crash": lambda: CrashAdversary(6, {0: 2, 3: 4}, seed=9),
        "crash-clean": lambda: CrashAdversary(5, {1: 3}, seed=1, clean=True),
        "partition": lambda: PartitionAdversary(8, 3),
        "static": lambda: StaticAdversary(
            6,
            GroupedSourceAdversary(6, num_groups=2).declared_stable_graph(),
        ),
        # Bad prefix then delegation to the good adversary's batch API.
        "eventual": lambda: EventuallyGoodAdversary(
            GroupedSourceAdversary(6, num_groups=2, seed=3, noise=0.2),
            bad_rounds=4,
        ),
        # No override — exercises the base-class fallback through graph().
        "fallback": lambda: RecordedAdversary(
            GroupedSourceAdversary(6, num_groups=2, seed=7, noise=0.25)
        ),
    }

    @pytest.mark.parametrize("family", sorted(FACTORIES))
    def test_matches_per_round_graphs(self, family):
        adv = self.FACTORIES[family]()
        rounds = 17
        stack = adv.adjacency_stack(rounds)
        assert stack.shape == (rounds, adv.n, adv.n)
        assert stack.dtype == np.bool_
        for r in range(1, rounds + 1):
            assert np.array_equal(
                stack[r - 1], to_adjacency(adv.graph(r), adv.n)
            ), f"round {r}"

    @pytest.mark.parametrize("family", sorted(FACTORIES))
    def test_same_seed_same_tensor(self, family):
        a = self.FACTORIES[family]().adjacency_stack(13)
        b = self.FACTORIES[family]().adjacency_stack(13)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("family", sorted(FACTORIES))
    def test_blocks_concatenate_to_full_stack(self, family):
        # The fast path pulls the schedule in blocks; block boundaries
        # must be invisible (same RNG streams regardless of chunking).
        adv = self.FACTORIES[family]()
        full = adv.adjacency_stack(15)
        pieces = np.concatenate(
            [
                self.FACTORIES[family]().adjacency_stack(4, start=1),
                self.FACTORIES[family]().adjacency_stack(7, start=5),
                self.FACTORIES[family]().adjacency_stack(4, start=12),
            ]
        )
        assert np.array_equal(full, pieces)

    @pytest.mark.parametrize("family", sorted(FACTORIES))
    def test_per_batch_blocks_match_per_scenario_blocks(self, family):
        # The mega-batched kernel pulls every lane's schedule through its
        # own adversary, but in a *different* access pattern than the
        # per-scenario path: lane pulls interleave and block boundaries
        # land wherever the whole batch needs rounds.  RNG-stream
        # identity must survive that — each pull is a pure function of
        # (count, start), never of pull history or other lanes' pulls.
        full_a = self.FACTORIES[family]().adjacency_stack(16)
        full_b = self.FACTORIES[family]().adjacency_stack(16)
        lane_a = self.FACTORIES[family]()
        lane_b = self.FACTORIES[family]()
        pieces_a, pieces_b = [], []
        # Interleaved, unevenly-sized pulls (the batched fetch pattern).
        for start, count in ((1, 7), (8, 2), (10, 7)):
            pieces_a.append(lane_a.adjacency_stack(count, start=start))
            pieces_b.append(lane_b.adjacency_stack(count, start=start))
        assert np.array_equal(np.concatenate(pieces_a), full_a)
        assert np.array_equal(np.concatenate(pieces_b), full_b)
        # Two same-seeded lanes of one batch observe the same run.
        assert np.array_equal(full_a, full_b)

    def test_batched_kernel_observes_per_scenario_schedule(self):
        # End to end: the adjacency prefix a batched lane records equals
        # the per-scenario kernel's, block boundaries and all.
        from repro.rounds.fastpath import (
            FastPathTask,
            simulate_fastpath_batch,
        )

        specs = [
            ScenarioSpec(n=6, k=2, num_groups=2, seed=s, noise=0.3)
            for s in range(4)
        ]
        tasks = [
            FastPathTask(
                adjacency=spec.build_adversary().adjacency_stack,
                initial_values=tuple(range(spec.n)),
                max_rounds=spec.resolved_max_rounds(),
            )
            for spec in specs
        ]
        batch = simulate_fastpath_batch(tasks)
        for spec, lane in zip(specs, batch):
            single = simulate_fastpath(
                spec.build_adversary().adjacency_stack,
                list(range(spec.n)),
                max_rounds=spec.resolved_max_rounds(),
            )
            assert lane.num_rounds == single.num_rounds
            assert np.array_equal(lane.adjacency, single.adjacency)

    def test_rounds_are_one_indexed(self):
        adv = self.FACTORIES["grouped"]()
        with pytest.raises(ValueError):
            adv.adjacency_stack(3, start=0)
        with pytest.raises(ValueError):
            adv.adjacency_stack(-1)

    def test_zero_rounds_is_empty(self):
        stack = self.FACTORIES["partition"]().adjacency_stack(0)
        assert stack.shape == (0, 8, 8)

    def test_declared_stable_matrix_matches_graph(self):
        adv = self.FACTORIES["grouped"]()
        assert np.array_equal(
            adv.declared_stable_matrix(),
            to_adjacency(adv.declared_stable_graph(), adv.n),
        )
