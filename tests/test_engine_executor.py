"""Executor: metric fidelity, crash isolation, serial/parallel equality."""

from __future__ import annotations

import time

import pytest

from repro.analysis.properties import check_agreement_properties
from repro.analysis.stats import decision_stats
from repro.engine.executor import (
    default_chunksize,
    execute_scenario,
    execute_scenarios,
    require_ok,
)
from repro.engine.scenarios import ScenarioSpec
from repro.experiments.sweeps import run_algorithm1
from repro.graphs.condensation import root_components
from repro.predicates.psrcs import Psrcs


# Module-level so the pool can pickle it to a worker by reference.
def _chunk_out_of_memory(chunk, backend="reference"):
    raise MemoryError("worker infra failure")


def _chunk_hard_kill(chunk, backend="reference"):
    # Simulate the OOM killer / a segfaulting extension: the worker
    # vanishes without unwinding Python.  The sleep lets the harvest
    # loop observe the chunk running first (10ms poll), so the
    # running-chunk attribution is deterministic.
    import os
    import signal
    import time

    time.sleep(0.3)
    os.kill(os.getpid(), signal.SIGKILL)


class TestExecuteScenario:
    def test_metrics_match_direct_simulation(self):
        spec = ScenarioSpec(n=8, k=3, num_groups=3, seed=4, noise=0.2)
        result = execute_scenario(spec)
        run = run_algorithm1(spec.build_adversary())
        stats = decision_stats(run)
        report = check_agreement_properties(run, 3)
        stable = run.stable_skeleton()
        assert result.ok
        assert result.num_rounds == run.num_rounds
        assert result.root_components == len(root_components(stable))
        assert result.psrcs_holds == Psrcs(3).check_skeleton(stable).holds
        assert result.distinct_decisions == report.num_decision_values
        assert result.all_decided == report.termination.holds
        assert result.last_decision_round == stats.last_decision_round
        assert result.lemma11_bound == stats.lemma11_bound
        assert result.within_bound == stats.within_bound
        assert set(result.decision_values) == run.decision_values()

    def test_pure_function_of_spec(self):
        spec = ScenarioSpec(n=7, k=2, num_groups=2, seed=9, noise=0.3)
        assert execute_scenario(spec) == execute_scenario(spec)

    def test_infeasible_spec_becomes_error_result(self):
        # 7 groups cannot partition 5 processes: the builder raises, and
        # the executor contains it instead of propagating.
        result = execute_scenario(ScenarioSpec(n=5, num_groups=7))
        assert result.status == "error"
        assert "ValueError" in result.error
        assert result.num_rounds is None
        assert result.decision_values == ()

    def test_require_ok_surfaces_worker_errors(self):
        specs = [
            ScenarioSpec(n=5, num_groups=2, seed=0),
            ScenarioSpec(n=5, num_groups=7, seed=0),  # infeasible
        ]
        results = execute_scenarios(specs, jobs=1)
        with pytest.raises(RuntimeError, match="1/2 scenarios failed"):
            require_ok(results)
        assert require_ok(results[:1]) == results[:1]

    def test_baseline_algorithms_run(self):
        spec = ScenarioSpec(
            n=6, k=2, adversary="crash", algorithm="floodmin",
            max_rounds=40,
        ).with_options(f=2)
        result = execute_scenario(spec)
        assert result.ok and result.all_decided


class TestExecuteScenarios:
    SPECS = [
        ScenarioSpec(n=5, k=2, num_groups=g, seed=s, noise=0.1)
        for g in (1, 2)
        for s in range(4)
    ]

    def test_serial_preserves_order(self):
        results = execute_scenarios(self.SPECS, jobs=1)
        assert [r.spec for r in results] == self.SPECS

    def test_parallel_equals_serial(self):
        serial = execute_scenarios(self.SPECS, jobs=1)
        parallel = execute_scenarios(self.SPECS, jobs=2, chunksize=3)
        assert parallel == serial

    def test_parallel_contains_error_results(self):
        specs = [ScenarioSpec(n=5, num_groups=7, seed=s) for s in range(4)]
        results = execute_scenarios(specs, jobs=2, chunksize=1)
        assert all(r.status == "error" for r in results)
        assert [r.spec for r in results] == specs

    def test_on_result_called_for_every_spec(self):
        seen = []
        execute_scenarios(self.SPECS, jobs=2, on_result=seen.append)
        assert {r.scenario_id for r in seen} == {
            s.scenario_id for s in self.SPECS
        }

    @pytest.mark.parametrize(
        "num,jobs,expected",
        [(0, 4, 1), (7, 4, 1), (100, 4, 6), (100, 1, 25)],
    )
    def test_default_chunksize(self, num, jobs, expected):
        assert default_chunksize(num, jobs) == expected

    def test_empty_spec_list(self):
        assert execute_scenarios([], jobs=4) == []

    def test_deterministic_chunk_failure_is_terminal(self, monkeypatch):
        # A task that cannot be pickled fails identically on every
        # retry; the chunk must come back as a terminal "error" record
        # so a resumed campaign converges instead of retrying forever.
        import repro.engine.executor as executor_module

        monkeypatch.setattr(
            executor_module, "_execute_chunk", lambda chunk: None
        )
        specs = [ScenarioSpec(n=4, k=2, num_groups=2, seed=s)
                 for s in range(2)]
        results = execute_scenarios(specs, jobs=2)
        assert [r.status for r in results] == ["error", "error"]
        assert all("chunk failed" in r.error for r in results)

    def test_transient_chunk_failure_is_retriable(self, monkeypatch):
        # Transient infrastructure (a worker running out of memory) must
        # come back retriable, like a timeout, so a resumed campaign
        # re-runs the chunk instead of skipping it forever.
        import repro.engine.executor as executor_module

        monkeypatch.setattr(
            executor_module, "_execute_chunk", _chunk_out_of_memory
        )
        specs = [ScenarioSpec(n=4, k=2, num_groups=2, seed=s)
                 for s in range(2)]
        results = execute_scenarios(specs, jobs=2)
        assert [r.status for r in results] == ["timeout", "timeout"]
        assert all("MemoryError" in r.error for r in results)


class TestHardKilledWorkers:
    def test_broken_pool_is_terminal_without_timeout(self, monkeypatch):
        # A hard-killed worker (OOM killer, segfault) must surface as
        # BrokenProcessPool-style errors and complete the collection
        # loop — no ``timeout`` required, no eternal hang (the old
        # multiprocessing.Pool backend's known limit).  Chunks observed
        # running come back *terminal*; chunks still queued when the
        # pool broke never executed and stay retriable.
        import repro.engine.executor as executor_module

        monkeypatch.setattr(
            executor_module, "_execute_chunk", _chunk_hard_kill
        )
        specs = [ScenarioSpec(n=4, k=2, num_groups=2, seed=s)
                 for s in range(6)]
        results = execute_scenarios(specs, jobs=2, chunksize=1)
        assert [r.spec for r in results] == specs
        assert all("BrokenProcessPool" in r.error for r in results)
        assert all(r.status in ("error", "timeout") for r in results)
        # The two chunks executing when their workers died are terminal;
        # the trailing chunks never left the submission queue (the call
        # pipe holds at most workers + 1) and stay retriable.
        assert results[0].status == "error"
        assert results[-1].status == "timeout"

    def test_broken_pool_records_are_not_retried_on_resume(
        self, monkeypatch, tmp_path
    ):
        # Terminal means terminal: a resumed campaign must not re-run
        # the scenarios whose workers died.
        import repro.engine.executor as executor_module
        from repro.engine.campaign import Campaign

        monkeypatch.setattr(
            executor_module, "_execute_chunk", _chunk_hard_kill
        )
        specs = [ScenarioSpec(n=4, k=2, num_groups=2, seed=s)
                 for s in range(2)]
        campaign = Campaign(specs, store=tmp_path / "j.jsonl", jobs=2)
        report = campaign.run()
        assert report.errors == 2
        monkeypatch.undo()
        campaign2 = Campaign(specs, store=tmp_path / "j.jsonl", jobs=2)
        report = campaign2.run()
        assert report.executed == 0 and report.skipped == 2


class TestTimeouts:
    # n=64 with Algorithm 1 runs for many seconds — plenty to outlive a
    # sub-second budget; the pool is terminated on exit, so these tests
    # do not wait for it.
    SLOW = ScenarioSpec(n=64, k=2, num_groups=2, noise=0.3)

    def test_timeout_enforced_even_with_jobs_1(self):
        # A timeout forces the pool backend: the serial loop cannot
        # interrupt a hung scenario in-process.
        result = execute_scenarios([self.SLOW, self.SLOW.with_options(x=1)],
                                   jobs=1, timeout=0.2)
        assert [r.status for r in result] == ["timeout", "timeout"]
        assert all("no result within" in r.error for r in result)

    def test_fast_chunks_journal_while_slow_chunk_hangs(self):
        fast = ScenarioSpec(n=4, k=2, num_groups=2)
        arrived = []
        results = execute_scenarios(
            [self.SLOW, fast],
            jobs=2,
            chunksize=1,
            timeout=2.0,
            on_result=lambda r: arrived.append(r.scenario_id),
        )
        # Grid order is restored in the return value...
        assert [r.spec for r in results] == [self.SLOW, fast]
        assert results[1].ok
        assert results[0].status == "timeout"
        # ...but the fast scenario was delivered (journaled) first, while
        # the slow chunk was still running.
        assert arrived[0] == fast.scenario_id


class TestWorkStealing:
    SPECS = [
        ScenarioSpec(n=6, k=2, num_groups=2, seed=s, noise=0.2)
        for s in range(32)
    ]

    def test_steal_preserves_journal_bytes_and_counts_splits(self):
        from repro.engine.store import journal_line
        from repro.engine.telemetry import Recorder

        serial = execute_scenarios(self.SPECS, backend="batched")
        expected = [journal_line(r) for r in serial]
        rec = Recorder()
        results = execute_scenarios(
            self.SPECS, jobs=2, backend="batched", steal=True, recorder=rec
        )
        assert [journal_line(r) for r in results] == expected
        vol = rec.snapshot()["volatile"]["counters"]
        assert vol.get("executor.steal_splits", 0) >= 1
        assert (
            vol["executor.batches_stolen"] == 2 * vol["executor.steal_splits"]
        )

    def test_presplit_fills_an_underplanned_pool(self):
        # A plan coarser than the pool (one 32-lane batch, four workers)
        # is pre-split down to one unit per worker before dispatch.
        from repro.engine.scheduler import plan_batches
        from repro.engine.store import journal_line
        from repro.engine.telemetry import Recorder

        plan = plan_batches(list(enumerate(self.SPECS)))
        assert len(plan.batches) == 1
        serial = execute_scenarios(self.SPECS, backend="batched")
        rec = Recorder()
        results = execute_scenarios(
            self.SPECS,
            jobs=4,
            backend="batched",
            steal=True,
            plan=plan,
            recorder=rec,
        )
        assert [journal_line(r) for r in results] == [
            journal_line(r) for r in serial
        ]
        vol = rec.snapshot()["volatile"]["counters"]
        # 32 -> 16+16 -> 8+8+16 -> 8+8+8+8: three splits minimum.
        assert vol["executor.steal_splits"] >= 3

    def test_deterministic_plane_is_steal_invariant(self):
        # Pool runs compared against pool runs: the serial path skips
        # the scheduler's plan-level metrics by design (the campaign's
        # own plan_batches is their single source), so only pool-vs-pool
        # snapshots are comparable in full.
        from repro.engine.telemetry import Recorder

        snaps = []
        for jobs, steal in ((2, False), (2, True), (4, True)):
            rec = Recorder()
            execute_scenarios(
                self.SPECS,
                jobs=jobs,
                backend="batched",
                steal=steal,
                recorder=rec,
            )
            snaps.append(rec.snapshot()["deterministic"])
        assert snaps[0] == snaps[1] == snaps[2]

    def test_steal_is_noop_for_unbatched_backends(self):
        from repro.engine.telemetry import Recorder

        rec = Recorder()
        results = execute_scenarios(
            self.SPECS[:6],
            jobs=2,
            backend="reference",
            steal=True,
            recorder=rec,
        )
        assert all(r.status == "ok" for r in results)
        vol = rec.snapshot()["volatile"]["counters"]
        assert "executor.steal_splits" not in vol
        assert "executor.batches_stolen" not in vol

    def test_steal_splits_are_contract_checked(self):
        from repro.engine import contracts as contracts_mod

        active = contracts_mod.activate()
        try:
            execute_scenarios(
                self.SPECS, jobs=2, backend="batched", steal=True
            )
            # At least one split sampled through the partition contract
            # (the first occurrence is always validated) — and none of
            # them raised.
            assert active._counts.get("steal_split", 0) >= 1
        finally:
            contracts_mod.deactivate()


def _sleep_chunk(seconds):
    # Module-level so the pool can pickle it to a worker by reference.
    import time

    time.sleep(seconds)
    return "slept"


class TestWorkerPool:
    """The shared, rebuildable pool behind the campaign service."""

    SPECS = [
        ScenarioSpec(n=5, k=2, num_groups=2, seed=s, noise=0.1)
        for s in range(6)
    ]

    def test_shared_pool_matches_owned_pool_results(self):
        from repro.engine.executor import WorkerPool

        baseline = execute_scenarios(self.SPECS, jobs=2)
        pool = WorkerPool(2)
        try:
            first = execute_scenarios(self.SPECS, jobs=2, pool=pool)
            second = execute_scenarios(self.SPECS, jobs=2, pool=pool)
        finally:
            pool.close(terminate=True)
        assert first == baseline
        assert second == baseline

    def test_rebuild_skips_stale_generation(self):
        from repro.engine.executor import WorkerPool

        pool = WorkerPool(1)
        try:
            gen = pool.generation
            pool.rebuild(gen)
            assert pool.generation == gen + 1
            # A second victim of the *same* crash reports the old
            # generation: its rebuild must no-op instead of thrashing.
            assert pool.rebuild(gen) == 0
            assert pool.generation == gen + 1
        finally:
            pool.close(terminate=True)

    def test_closed_pool_refuses_work_and_rebuilds(self):
        from repro.engine.executor import WorkerPool

        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_sleep_chunk, 0.0)
        assert pool.rebuild() == 0

    def test_terminate_kills_workers_despite_inherited_sigterm_handler(
        self,
    ):
        """Regression: the CLI/daemon installs SIGTERM→KeyboardInterrupt
        before the pool forks its workers.  Fork copies that handler
        into the children, where the executor task loop swallows the
        interrupt as a task failure — so terminate() never killed a
        busy worker and every fast-shutdown path hung on the immortal
        process.  The worker initializer must reset the disposition."""
        import signal as _signal

        from repro.engine.executor import WorkerPool

        def _graceful(signum, frame):  # noqa: ARG001 — signal API
            raise KeyboardInterrupt

        previous = _signal.signal(_signal.SIGTERM, _graceful)
        try:
            pool = WorkerPool(1)
            handle = pool.submit(_sleep_chunk, 60.0)
            deadline = time.monotonic() + 10.0
            while not handle.running():
                assert time.monotonic() < deadline, "chunk never started"
                time.sleep(0.01)
            procs = list(pool._executor._processes.values())
            assert procs and all(p.is_alive() for p in procs)
            assert pool.close(terminate=True) >= 1
            deadline = time.monotonic() + 10.0
            while any(p.is_alive() for p in procs):
                assert (
                    time.monotonic() < deadline
                ), "terminate() left a worker alive (inherited handler)"
                time.sleep(0.05)
        finally:
            _signal.signal(_signal.SIGTERM, previous)


class TestStopAwareSleep:
    """The dispatch loop's idle wait (which also covers retry-backoff
    windows) must wake promptly when the stop signal flips — a daemon
    SIGTERM may land mid-backoff."""

    def test_wakes_early_when_stop_flips(self):
        import threading

        from repro.engine.executor import _stop_aware_sleep

        stop = threading.Event()
        threading.Timer(0.15, stop.set).start()
        t0 = time.monotonic()
        _stop_aware_sleep(30.0, stop.is_set)
        elapsed = time.monotonic() - t0
        assert elapsed < 2.0, f"slept {elapsed:.2f}s past the stop signal"

    def test_returns_immediately_when_already_stopped(self):
        from repro.engine.executor import _stop_aware_sleep

        t0 = time.monotonic()
        _stop_aware_sleep(30.0, lambda: True)
        assert time.monotonic() - t0 < 1.0

    def test_sleeps_fully_without_stop_signal(self):
        from repro.engine.executor import _stop_aware_sleep

        t0 = time.monotonic()
        _stop_aware_sleep(0.15, None)
        _stop_aware_sleep(0.15, lambda: False)
        assert time.monotonic() - t0 >= 0.25
