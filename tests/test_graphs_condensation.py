"""Condensation / root component tests."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.condensation import (
    condensation,
    count_root_components,
    is_root_component,
    root_components,
    sink_components,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import directed_cycle, gnp_random
from tests.conftest import to_networkx


class TestCondensation:
    def test_single_scc(self):
        g = directed_cycle(4)
        c = condensation(g)
        assert len(c.components) == 1
        assert c.dag.number_of_edges() == 0

    def test_diamond_dag(self, diamond):
        c = condensation(diamond)
        assert len(c.components) == 4
        # condensation of a DAG is isomorphic to the DAG itself
        assert c.dag.number_of_edges() == 4

    def test_component_of_consistent(self, rng):
        g = gnp_random(20, 0.1, rng)
        c = condensation(g)
        for node in g.nodes():
            assert node in c.components[c.component_of[node]]

    def test_dag_edges_reflect_original(self, two_cycles):
        g = two_cycles.copy()
        g.add_edge(0, 3)  # cycle A -> cycle B
        c = condensation(g)
        assert len(c.components) == 2
        assert c.dag.number_of_edges() == 1
        i, j = c.component_of[0], c.component_of[3]
        assert c.dag.has_edge(i, j)

    def test_no_dag_self_loops(self, rng):
        g = gnp_random(15, 0.2, rng, self_loops=True)
        c = condensation(g)
        for i in range(len(c.components)):
            assert not c.dag.has_edge(i, i)

    def test_dag_is_acyclic(self, rng):
        g = gnp_random(25, 0.1, rng)
        c = condensation(g)
        nxdag = nx.DiGraph()
        nxdag.add_nodes_from(range(len(c.components)))
        nxdag.add_edges_from(c.dag.edges())
        assert nx.is_directed_acyclic_graph(nxdag)

    def test_topological_order(self, rng):
        g = gnp_random(20, 0.12, rng)
        c = condensation(g)
        order = c.topological_order()
        position = {comp: i for i, comp in enumerate(order)}
        for u, v in c.dag.iter_edges():
            assert position[u] < position[v]

    def test_deterministic_indexing(self, rng):
        g = gnp_random(15, 0.15, rng)
        c1, c2 = condensation(g), condensation(g.copy())
        assert c1.components == c2.components


class TestRootComponents:
    def test_cycle_is_root(self):
        g = directed_cycle(3)
        roots = root_components(g)
        assert roots == [frozenset({0, 1, 2})]

    def test_paper_example_shape(self, figure1_stable):
        # §II: "Figure 1b shows a graph with 2 root components {p3,p4,p5}
        # and {p1,p2}" — ids {2,3,4} and {0,1}.
        roots = set(root_components(figure1_stable))
        assert roots == {frozenset({0, 1}), frozenset({2, 3, 4})}

    def test_dag_root_is_source(self, diamond):
        assert root_components(diamond) == [frozenset({0})]

    def test_at_least_one_root(self, rng):
        # Lemma 11's first step: every nonempty graph has a root component.
        for seed in range(10):
            g = gnp_random(12, 0.15, np.random.default_rng(seed))
            assert count_root_components(g) >= 1

    def test_is_root_component_definition(self, figure1_stable):
        assert is_root_component(figure1_stable, frozenset({0, 1}))
        assert not is_root_component(figure1_stable, frozenset({5}))

    def test_sink_components(self, diamond):
        assert sink_components(diamond) == [frozenset({3})]

    def test_isolated_nodes_are_roots_and_sinks(self):
        g = DiGraph(nodes=[0, 1, 2])
        assert len(root_components(g)) == 3
        assert len(sink_components(g)) == 3

    def test_roots_of_reversed_are_sinks(self, rng):
        g = gnp_random(15, 0.1, rng)
        roots = set(root_components(g))
        sinks_rev = set(sink_components(g.reversed()))
        assert roots == sinks_rev


@st.composite
def digraphs(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=40,
        )
    )
    return DiGraph(nodes=range(n), edges=edges)


class TestProperties:
    @given(digraphs())
    @settings(max_examples=120, deadline=None)
    def test_nonempty_graph_has_root(self, g):
        assert count_root_components(g) >= 1

    @given(digraphs())
    @settings(max_examples=120, deadline=None)
    def test_every_node_reachable_from_some_root(self, g):
        # The termination proof's flooding argument (Lemma 11).
        from repro.graphs.paths import descendants

        roots = root_components(g)
        covered = set()
        for root in roots:
            covered |= descendants(g, next(iter(root)))
        assert covered == set(g.nodes())

    @given(digraphs())
    @settings(max_examples=100, deadline=None)
    def test_roots_satisfy_definition(self, g):
        for root in root_components(g):
            assert is_root_component(g, root)
