"""Runtime contract layer: zero-cost-off, checkpoints, violations."""

import json
import pickle

import numpy as np
import pytest

from repro.engine import contracts as contracts_module
from repro.engine.contracts import (
    NO_CONTRACTS,
    ContractViolation,
    Contracts,
    contract,
    contracts_enabled,
)
from repro.engine.backends import (
    execute_scenario_batch,
    execute_scenario_vectorized,
)
from repro.engine.campaign import Campaign
from repro.engine.scenarios import (
    ADVERSARIES,
    ScenarioSpec,
    register_adversary,
)
from repro.engine.scheduler import plan_batches
from repro.engine.store import ResultStore, canonical_line


@pytest.fixture(autouse=True)
def _clean_contract_state(monkeypatch):
    """Every test starts and ends with contracts off and unmemoized."""
    monkeypatch.delenv(contracts_module.CONTRACTS_ENV, raising=False)
    monkeypatch.setattr(contracts_module, "_ACTIVE", None)
    yield
    monkeypatch.setattr(contracts_module, "_ACTIVE", None)


# ----------------------------------------------------------------------
# Activation plumbing
# ----------------------------------------------------------------------
def test_null_contracts_is_falsy_and_inert():
    assert not NO_CONTRACTS
    assert NO_CONTRACTS.sample("anything") is False
    # Every check is a no-op even on garbage input.
    NO_CONTRACTS.check_block_fetch(None, 0, 0, None)
    NO_CONTRACTS.check_plan(None, None)
    NO_CONTRACTS.check_lane_identity({}, {"x": 1})
    NO_CONTRACTS.check_canonical_backend_free("a", "b")
    NO_CONTRACTS.check_merge_commutative([])


def test_get_defaults_to_off():
    assert contracts_module.get() is NO_CONTRACTS


def test_env_var_arms_contracts(monkeypatch):
    monkeypatch.setenv(contracts_module.CONTRACTS_ENV, "1")
    monkeypatch.setattr(contracts_module, "_ACTIVE", None)
    active = contracts_module.get()
    assert isinstance(active, Contracts)
    assert active
    # Memoized: same object on repeat lookups.
    assert contracts_module.get() is active


def test_env_zero_means_off(monkeypatch):
    monkeypatch.setenv(contracts_module.CONTRACTS_ENV, "0")
    monkeypatch.setattr(contracts_module, "_ACTIVE", None)
    assert contracts_module.get() is NO_CONTRACTS


def test_context_manager_restores_previous_state():
    import os

    before = contracts_module.get()
    with contracts_enabled() as active:
        assert isinstance(active, Contracts)
        assert contracts_module.get() is active
        assert os.environ[contracts_module.CONTRACTS_ENV] == "1"
    assert contracts_module.get() is before
    assert contracts_module.CONTRACTS_ENV not in os.environ


def test_sampling_first_and_every_nth():
    active = Contracts(sample_every=4)
    hits = [active.sample("cp") for _ in range(9)]
    assert hits == [True, False, False, False, True,
                    False, False, False, True]
    # Independent counters per checkpoint name.
    assert active.sample("other") is True


# ----------------------------------------------------------------------
# ContractViolation mechanics
# ----------------------------------------------------------------------
def test_violation_message_carries_json_repro():
    exc = ContractViolation("x.y", "boom", {"id": "abc", "seed": 3})
    text = str(exc)
    assert "contract violated [x.y]: boom" in text
    assert '"id": "abc"' in text


def test_violation_with_context_inner_keys_win():
    exc = ContractViolation("c", "d", {"lane": 2})
    enriched = exc.with_context(lane=9, backend="batched")
    assert enriched.repro == {"lane": 2, "backend": "batched"}


def test_violation_pickles_with_structure():
    exc = ContractViolation("c", "d", {"seed": 1})
    back = pickle.loads(pickle.dumps(exc))
    assert isinstance(back, ContractViolation)
    assert back.contract == "c"
    assert back.detail == "d"
    assert back.repro == {"seed": 1}
    assert isinstance(back, AssertionError)


# ----------------------------------------------------------------------
# The @contract decorator
# ----------------------------------------------------------------------
def test_decorator_is_inert_when_off():
    @contract(pre=lambda x: False, post=lambda r, x: False)
    def fn(x):
        return x + 1

    # Conditions would fail — but contracts are off, so they never run.
    assert fn(1) == 2


def test_decorator_enforces_pre_and_post():
    @contract(pre=lambda x: x >= 0)
    def sqrtish(x):
        return x**0.5

    @contract(post=lambda r, x: r == x * 2)
    def broken_double(x):
        return x * 3

    with contracts_enabled() as active:
        assert sqrtish(4) == 2.0
        with pytest.raises(ContractViolation, match="sqrtish.pre"):
            sqrtish(-1)
        with pytest.raises(ContractViolation, match="broken_double.post"):
            broken_double(2)
        assert active.violations == 2


def test_decorator_wraps_condition_crashes():
    @contract(pre=lambda x: x.undefined_attr)
    def fn(x):
        return x

    with contracts_enabled():
        with pytest.raises(ContractViolation, match="AttributeError"):
            fn(3)


# ----------------------------------------------------------------------
# The named checkpoints
# ----------------------------------------------------------------------
def test_check_block_fetch_pass_and_fail():
    active = Contracts()
    stack = np.ones((2, 3, 3), dtype=bool)
    active.check_block_fetch(lambda c, s: stack, 2, 1, stack)

    calls = iter([stack, np.zeros((2, 3, 3), dtype=bool)])

    def impure(count, start):
        return next(calls)

    fetched = impure(2, 1)
    with pytest.raises(ContractViolation) as info:
        active.check_block_fetch(impure, 2, 1, fetched, context={"n": 3})
    assert info.value.contract == "adversary.block_fetch_purity"
    assert info.value.repro["n"] == 3
    assert info.value.repro["count"] == 2


def test_check_plan_determinism():
    active = Contracts()
    active.check_plan([1, 2], lambda: [1, 2])
    with pytest.raises(ContractViolation) as info:
        active.check_plan([1, 2], lambda: [2, 1])
    assert info.value.contract == "scheduler.plan_determinism"


def test_check_lane_identity_compares_arrays():
    active = Contracts()
    active.check_lane_identity(
        {"rounds": 5, "vals": np.array([1, 2])},
        {"rounds": 5, "vals": np.array([1, 2])},
    )
    with pytest.raises(ContractViolation, match="lane field 'rounds'"):
        active.check_lane_identity({"rounds": 5}, {"rounds": 6})


def test_check_canonical_backend_free():
    active = Contracts()
    active.check_canonical_backend_free("x", "x")
    with pytest.raises(ContractViolation) as info:
        active.check_canonical_backend_free("x", "y", context={"id": "a"})
    assert info.value.contract == "store.canonical_backend_free"


def test_check_merge_commutative_passes_on_real_snapshots():
    from repro.engine.telemetry import Recorder

    a, b = Recorder(), Recorder()
    a.inc("k", 2)
    b.inc("k", 3)
    b.inc("other", 1)
    active = Contracts()
    active.check_merge_commutative([a.snapshot(), b.snapshot()])
    # Fewer than two snapshots: vacuously fine.
    active.check_merge_commutative([a.snapshot()])


# ----------------------------------------------------------------------
# End-to-end: checkpoints wired into the engine
# ----------------------------------------------------------------------
def _spec(seed=0, n=6, **kw):
    return ScenarioSpec(n=n, k=2, num_groups=2, seed=seed, noise=0.1, **kw)


def test_vectorized_run_clean_under_contracts():
    with contracts_enabled() as active:
        result = execute_scenario_vectorized(_spec())
        assert result.ok
        assert active.checks > 0


def test_batch_run_clean_under_contracts():
    specs = [_spec(seed=s) for s in range(3)]
    with contracts_enabled() as active:
        results = execute_scenario_batch(specs)
        assert [r.ok for r in results] == [True, True, True]
        # The lane-identity checkpoint sampled at least the first batch.
        assert active.checks > 0


def test_plan_batches_verified_under_contracts():
    items = list(enumerate(_spec(seed=s) for s in range(6)))
    with contracts_enabled() as active:
        plan = plan_batches(items, None, jobs=2)
        assert plan is not None
        assert active.checks > 0


def test_impure_adversary_caught_by_block_fetch_contract():
    from repro.adversaries.base import Adversary
    from repro.graphs.digraph import DiGraph

    class ImpureAdversary(Adversary):
        """Returns a different schedule on every block fetch."""

        def __init__(self, n):
            super().__init__(n)
            self._flips = 0

        def graph(self, round_no):
            g = DiGraph(nodes=range(self.n))
            for p in range(self.n):
                g.add_edge(p, p)
                g.add_edge(p, (p + 1) % self.n)
            return g

        def adjacency_stack(self, rounds, start=1):
            stack = super().adjacency_stack(rounds, start)
            self._flips += 1
            if self._flips > 1 and rounds:
                stack[0, 0, 1] = not stack[0, 0, 1]
            return stack

    register_adversary("_impure_test", lambda spec: ImpureAdversary(spec.n))
    try:
        spec = ScenarioSpec(n=4, k=1, adversary="_impure_test")
        with contracts_enabled():
            with pytest.raises(ContractViolation) as info:
                execute_scenario_vectorized(spec)
        assert info.value.contract == "adversary.block_fetch_purity"
        # The repro names the spec and backend for reproduction.
        assert info.value.repro.get("backend") == "vectorized"
        assert info.value.repro.get("id") == spec.scenario_id
    finally:
        ADVERSARIES.pop("_impure_test", None)


def test_schedule_fingerprint_is_pure_witness():
    spec = _spec()
    a = spec.build_adversary().schedule_fingerprint(10)
    b = spec.build_adversary().schedule_fingerprint(10)
    assert a == b
    assert a != spec.build_adversary().schedule_fingerprint(11)


# ----------------------------------------------------------------------
# Bytes are identical with contracts on or off
# ----------------------------------------------------------------------
def test_journal_and_summary_bytes_identical_on_off(tmp_path):
    specs = [_spec(seed=s) for s in range(4)]

    def run(tag, armed):
        journal = tmp_path / f"{tag}.jsonl"
        summary = tmp_path / f"{tag}.summary.jsonl"
        campaign = Campaign(specs, store=str(journal), backend="auto")
        if armed:
            with contracts_enabled():
                campaign.run()
        else:
            campaign.run()
        campaign.write_summary(summary)
        return journal.read_bytes(), summary.read_bytes()

    journal_off, summary_off = run("off", armed=False)
    journal_on, summary_on = run("on", armed=True)
    assert summary_on == summary_off
    assert journal_on == journal_off


def test_canonical_line_is_backend_free():
    from dataclasses import replace

    from repro.engine.executor import execute_scenario

    result = execute_scenario(_spec())
    assert canonical_line(result) == canonical_line(
        replace(result, backend="batched")
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_campaign_run_contracts_flag(tmp_path, capsys):
    from repro.cli import main

    store = tmp_path / "journal.jsonl"
    code = main(
        [
            "campaign", "run", "--store", str(store),
            "--contracts", "--backend", "auto", "--no-progress",
            "-n", "5", "-k", "2", "--seeds", "2", "--noise", "0.1",
        ]
    )
    assert code == 0
    assert store.exists()
    out = capsys.readouterr().out
    assert "state: ok" in out
    # Contracts were actually armed in-process.
    assert contracts_module.enabled()


# ----------------------------------------------------------------------
# Steal-split partition purity
# ----------------------------------------------------------------------
def _planned_batch(lanes=16, n=6):
    specs = [
        ScenarioSpec(n=n, k=2, num_groups=2, seed=s) for s in range(lanes)
    ]
    (batch,) = plan_batches(list(enumerate(specs))).batches
    return batch


def test_split_partition_accepts_a_clean_cut():
    from repro.engine.scheduler import split_planned

    active = Contracts()
    batch = _planned_batch()
    active.check_split_partition(batch, split_planned(batch))
    assert active.checks == 1 and active.violations == 0


def test_split_partition_rejects_dropped_or_reordered_lanes():
    from dataclasses import replace

    from repro.engine.scheduler import split_planned

    active = Contracts()
    batch = _planned_batch()
    first, second = split_planned(batch)
    with pytest.raises(ContractViolation, match="steal_split_partition"):
        active.check_split_partition(batch, (first, replace(
            second, items=second.items[:-1]
        )))
    with pytest.raises(ContractViolation, match="steal_split_partition"):
        active.check_split_partition(batch, (second, first))


def test_split_partition_rejects_a_changed_envelope():
    from dataclasses import replace

    from repro.engine.scheduler import split_planned

    active = Contracts()
    batch = _planned_batch()
    first, second = split_planned(batch)
    shrunk = replace(first, width=max(1, first.width - 1))
    with pytest.raises(ContractViolation, match="steal_split_partition"):
        active.check_split_partition(batch, (shrunk, second))


def test_null_contracts_split_partition_is_inert():
    batch = _planned_batch()
    assert NO_CONTRACTS.check_split_partition(batch, ()) is None
