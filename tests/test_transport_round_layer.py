"""Tests for round synthesis over the asynchronous substrate — the bridge
between the paper's round model and the partially synchronous reality it
abstracts."""

from __future__ import annotations

import pytest

from repro.analysis.properties import check_agreement_properties
from repro.core.invariants import make_invariant_hook
from repro.experiments.sweeps import run_algorithm1
from repro.graphs.condensation import count_root_components
from repro.predicates.psrcs import Psrcs
from repro.transport.network import (
    FixedLatency,
    Network,
    PartiallySynchronousLatency,
    UniformLatency,
)
from repro.transport.round_layer import (
    RoundSynthesizer,
    SynthesizedAdversary,
    grouped_core_links,
)


def ps_network(groups, n=None, slow_prob=0.6, seed=0, **kw):
    n = n or max(max(g) for g in groups) + 1
    model = PartiallySynchronousLatency(
        grouped_core_links(groups), slow_prob=slow_prob, seed=seed, **kw
    )
    return Network(n, model), model


class TestSynthesizer:
    def test_timeout_validated(self):
        net = Network(2, FixedLatency(1.0))
        with pytest.raises(ValueError):
            RoundSynthesizer(net, timeout=0.0)

    def test_synchronous_network_full_graph(self):
        # latency 1.0 <= timeout 2.0: every message timely, every round.
        net = Network(4, FixedLatency(1.0))
        synth = RoundSynthesizer(net, timeout=2.0)
        for r in (1, 2, 3):
            g = synth.synthesize_round(r)
            assert g.number_of_edges() == 16
            assert synth.late_messages(r) == 0

    def test_too_slow_network_self_only(self):
        # latency 5.0 > timeout 1.0: only self-delivery (latency 0).
        net = Network(3, FixedLatency(5.0))
        synth = RoundSynthesizer(net, timeout=1.0)
        g = synth.synthesize_round(1)
        assert g.edges() == frozenset({(p, p) for p in range(3)})
        assert synth.late_messages(1) == 6

    def test_rounds_in_order(self):
        net = Network(2, FixedLatency(0.5))
        synth = RoundSynthesizer(net, timeout=1.0)
        with pytest.raises(ValueError, match="in order"):
            synth.synthesize_round(2)

    def test_round_memoized(self):
        net = Network(2, UniformLatency(0.0, 2.0, seed=1))
        synth = RoundSynthesizer(net, timeout=1.0)
        g1 = synth.synthesize_round(1)
        assert synth.synthesize_round(1) is g1

    def test_clock_advances_exactly_one_timeout_per_round(self):
        net = Network(3, UniformLatency(0.0, 5.0, seed=2))
        synth = RoundSynthesizer(net, timeout=1.5)
        for r in range(1, 5):
            synth.synthesize_round(r)
            assert synth._queue.now == pytest.approx(1.5 * r)

    def test_core_links_always_timely(self):
        groups = [[0, 1, 2], [3, 4, 5]]
        net, model = ps_network(groups)
        synth = RoundSynthesizer(net, timeout=1.0)
        for r in range(1, 25):
            g = synth.synthesize_round(r)
            for u, v in model.core:
                assert g.has_edge(u, v), f"core link {(u, v)} late in round {r}"

    def test_timely_iff_latency_within_timeout(self):
        # cross-check the synthesized graph against the latency model
        net = Network(4, UniformLatency(0.0, 2.0, seed=9))
        ref = UniformLatency(0.0, 2.0, seed=9)
        synth = RoundSynthesizer(net, timeout=1.0)
        for r in range(1, 6):
            g = synth.synthesize_round(r)
            for u in range(4):
                for v in range(4):
                    timely = ref.latency(u, v, r - 1) <= 1.0
                    assert g.has_edge(u, v) == timely


class TestSynthesizedAdversary:
    def test_declared_stable_is_core(self):
        groups = [[0, 1], [2, 3]]
        net, model = ps_network(groups)
        adv = SynthesizedAdversary(RoundSynthesizer(net, timeout=1.0))
        stable = adv.declared_stable_graph()
        for u, v in model.core:
            assert stable.has_edge(u, v)
        assert all(stable.has_edge(p, p) for p in range(4))

    def test_timeout_below_fast_band_rejected(self):
        groups = [[0, 1]]
        net, _ = ps_network(groups)
        with pytest.raises(ValueError, match="fast band"):
            SynthesizedAdversary(RoundSynthesizer(net, timeout=0.05))

    def test_no_declaration_for_generic_models(self):
        net = Network(3, FixedLatency(0.5))
        adv = SynthesizedAdversary(RoundSynthesizer(net, timeout=1.0))
        assert adv.declared_stable_graph() is None

    def test_skeleton_converges_to_core(self):
        # with slow_prob high enough, 30 rounds kill all non-core edges
        groups = [[0, 1, 2], [3, 4, 5]]
        net, _ = ps_network(groups, slow_prob=0.7, seed=5)
        adv = SynthesizedAdversary(RoundSynthesizer(net, timeout=1.0))
        inter = adv.graph(1)
        for r in range(2, 31):
            inter = inter.intersection(adv.graph(r))
        assert inter == adv.declared_stable_graph()

    def test_psrcs_emerges_from_latencies(self):
        groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        net, _ = ps_network(groups, seed=4)
        adv = SynthesizedAdversary(RoundSynthesizer(net, timeout=1.0))
        assert Psrcs(3).check_skeleton(adv.declared_stable_graph()).holds
        assert count_root_components(adv.declared_stable_graph()) == 3


class TestEndToEnd:
    def test_k_set_agreement_over_the_wire(self):
        # the full stack: latencies -> rounds -> Psrcs(3) -> Algorithm 1,
        # with all lemma checkers attached.
        groups = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        net, _ = ps_network(groups, seed=4)
        adv = SynthesizedAdversary(RoundSynthesizer(net, timeout=1.0))
        run = run_algorithm1(
            adv, max_rounds=80, invariant_hooks=[make_invariant_hook()]
        )
        report = check_agreement_properties(run, 3)
        assert report.all_hold, report.summary()

    def test_consensus_on_synchronous_network(self):
        net = Network(5, FixedLatency(0.5))
        adv = SynthesizedAdversary(RoundSynthesizer(net, timeout=1.0))
        run = run_algorithm1(adv, max_rounds=30)
        assert run.all_decided()
        assert len(run.decision_values()) == 1

    def test_tight_timeout_gives_n_values(self):
        # timeout below every inter-process latency: everyone isolated,
        # all decide their own value (the ♦Psrcs collapse, from the wire).
        net = Network(4, FixedLatency(5.0))
        adv = SynthesizedAdversary(RoundSynthesizer(net, timeout=1.0))
        run = run_algorithm1(adv, max_rounds=20)
        assert len(run.decision_values()) == 4


class TestGroupedCoreLinks:
    def test_star_plus_cycle(self):
        links = grouped_core_links([[0, 1, 2]])
        assert (0, 1) in links and (0, 2) in links  # star
        assert (1, 2) in links and (2, 1) in links  # cycle both ways

    def test_singleton_group(self):
        assert grouped_core_links([[5]]) == []

    def test_no_duplicates(self):
        links = grouped_core_links([[0, 1], [2, 3, 4]])
        assert len(links) == len(set(links))
