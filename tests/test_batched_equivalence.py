"""Differential testing: the mega-batched backend vs vectorized vs reference.

The batched backend is the third execution engine for Algorithm 1
scenarios, and its correctness rests entirely on *exact* equivalence with
the other two: same decision rounds, same decision values, same skeleton
statistics, same canonical JSON line — for every scenario, under every
batch partition, at every worker count.  This suite pins that down three
ways:

* a **randomized differential grid** over ``n = 2..12`` × the four core
  adversary families (grouped, crash, partition, static) × noise /
  topology / ablation knobs, asserting canonical-line equality across all
  three backends (singleton and grouped batches);
* a **batching-invariance property**: for a fixed seed set, the results
  — including the journaled record bytes — are identical whatever the
  batch partition (sizes 1, 2, S, shuffled groupings) and identical
  between ``jobs=1`` and ``jobs=N`` runs;
* **family-level equivalence** for every registered family that supports
  the batched backend, including the ``eventual`` family's fast-result
  twin (extras and all) and the ``ablation`` family's per-arm routing;
* a **heterogeneous-latency grid** (mixed noise/adversary, so lanes of
  one batch retire at wildly different rounds) pinning that the batch
  scheduler's lane **compaction** and width **refill** are pure
  execution-shape knobs: canonical lines equal across all three
  backends, journal bytes invariant under compaction on/off, batch
  shuffle, a degenerate ``--batch-memory`` envelope and
  ``--jobs {1, 2, 4}``.

``scripts/smoke.sh`` additionally byte-compares whole campaign summaries
produced by the three backends through the CLI on every change.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.engine.backends import (
    BACKEND_AUTO,
    BACKEND_BATCHED,
    BACKEND_REFERENCE,
    BACKEND_VECTORIZED,
    batch_compatible,
    execute_scenario_batch,
    execute_scenario_vectorized,
    execute_scenario_with_backend,
)
from repro.engine.campaign import Campaign
from repro.engine.executor import execute_scenario, execute_scenarios
from repro.engine.registry import family_campaign, run_family
from repro.engine.scenarios import ScenarioSpec
from repro.engine.store import canonical_line, decode_result, journal_line
from repro.rounds.fastpath import (
    FastPathTask,
    default_batch_size,
    simulate_fastpath,
    simulate_fastpath_batch,
)


# ----------------------------------------------------------------------
# The randomized differential grid (seeded, so collection is stable)
# ----------------------------------------------------------------------
def _sample_spec(rng: np.random.Generator, n: int, adversary: str) -> ScenarioSpec:
    seed = int(rng.integers(0, 1000))
    if adversary == "grouped":
        k = int(rng.integers(1, min(4, n)))  # k < n
        m = int(rng.integers(1, k + 1))
        options = {}
        if rng.random() < 0.3:
            options["purge_window"] = int(rng.integers(2, n + 2))
        if rng.random() < 0.2:
            options["prune_unreachable"] = False
        if rng.random() < 0.3:
            options["quiet_period"] = int(rng.integers(2, 7))
        return ScenarioSpec(
            n=n,
            k=k,
            num_groups=m,
            seed=seed,
            noise=float(rng.choice([0.0, 0.15, 0.3, 0.45])),
            topology=str(rng.choice(["cycle", "star", "clique"])),
            options=tuple(sorted(options.items())),
        )
    if adversary == "crash":
        f = max(1, n // 3)
        return ScenarioSpec(
            n=n,
            k=min(2, n),
            seed=seed,
            adversary="crash",
            options=(("f", f),),
        )
    if adversary == "partition":
        k_env = int(rng.integers(1, max(2, n // 2 + 1)))
        return ScenarioSpec(
            n=n,
            k=k_env,
            seed=seed,
            adversary="partition",
            options=(("k_env", k_env),),
        )
    if adversary == "static":
        return ScenarioSpec(
            n=n,
            k=min(2, n),
            seed=seed,
            noise=float(rng.choice([0.0, 0.2, 0.5])),
            adversary="static",
        )
    raise AssertionError(adversary)


def _differential_grid() -> list[ScenarioSpec]:
    rng = np.random.default_rng(0xB10C)
    specs = []
    for n in range(2, 13):
        for adversary in ("grouped", "crash", "partition", "static"):
            specs.append(_sample_spec(rng, n, adversary))
    return specs


DIFFERENTIAL_GRID = _differential_grid()


class TestDifferentialGrid:
    """reference ≡ vectorized ≡ batched, scenario by scenario."""

    @pytest.mark.parametrize(
        "spec",
        DIFFERENTIAL_GRID,
        ids=lambda s: f"{s.adversary}-n{s.n}-{s.scenario_id}",
    )
    def test_three_backends_agree(self, spec):
        reference = execute_scenario(spec)
        vectorized = execute_scenario_vectorized(spec)
        batched = execute_scenario_with_backend(spec, BACKEND_BATCHED)
        assert reference.status == "ok", reference.error
        assert vectorized.status == "ok", vectorized.error
        assert batched.status == "ok", batched.error
        # One line covers every metric field and the decision values.
        line = canonical_line(reference)
        assert canonical_line(vectorized) == line
        assert canonical_line(batched) == line
        assert batched.backend == BACKEND_BATCHED

    def test_grouped_batches_match_reference(self):
        # The same grid, but batched the way the executor would batch it:
        # same-n groups through one mega-batched kernel call each.
        by_n: dict[int, list[ScenarioSpec]] = {}
        for spec in DIFFERENTIAL_GRID:
            by_n.setdefault(spec.n, []).append(spec)
        for n, group in by_n.items():
            batched = execute_scenario_batch(group)
            for spec, result in zip(group, batched):
                assert result.status == "ok", (n, result.error)
                assert canonical_line(result) == canonical_line(
                    execute_scenario(spec)
                ), f"n={n} spec={spec.scenario_id}"

    def test_journal_records_differ_only_in_backend_tag(self):
        spec = DIFFERENTIAL_GRID[0]
        reference = execute_scenario(spec)
        batched = execute_scenario_with_backend(spec, BACKEND_BATCHED)
        ref_record = json.loads(journal_line(reference))
        bat_record = json.loads(journal_line(batched))
        assert ref_record.pop("backend") == "reference"
        assert bat_record.pop("backend") == "batched"
        assert ref_record == bat_record

    def test_batched_journal_line_round_trips(self):
        spec = ScenarioSpec(n=6, k=2, num_groups=2, seed=1, noise=0.2)
        result = execute_scenario_with_backend(spec, BACKEND_BATCHED)
        decoded = decode_result(json.loads(journal_line(result)))
        assert decoded.backend == BACKEND_BATCHED
        assert canonical_line(decoded) == canonical_line(result)


# ----------------------------------------------------------------------
# Batching invariance: the partition must be invisible
# ----------------------------------------------------------------------
FIXED_SPECS = [
    ScenarioSpec(n=7, k=2, num_groups=2, seed=s, noise=0.25) for s in range(6)
] + [
    ScenarioSpec(n=5, k=2, num_groups=2, seed=s, noise=0.1) for s in range(4)
]


def _tasks(specs):
    tasks = []
    for spec in specs:
        adversary = spec.build_adversary()
        tasks.append(
            FastPathTask(
                adjacency=adversary.adjacency_stack,
                initial_values=tuple(range(spec.n)),
                max_rounds=spec.resolved_max_rounds(),
            )
        )
    return tasks


def _run_key(run):
    return (
        run.n,
        run.num_rounds,
        run.decided.tobytes(),
        run.decision_round.tobytes(),
        run.decision_value.tobytes(),
        run.adjacency.tobytes(),
    )


class TestBatchingInvariance:
    """Results and journal bytes are identical whatever the partition."""

    def test_kernel_partition_invariance(self):
        specs = [s for s in FIXED_SPECS if s.n == 7]
        singles = [
            simulate_fastpath(
                t.adjacency, list(t.initial_values), max_rounds=t.max_rounds
            )
            for t in _tasks(specs)
        ]
        expected = [_run_key(r) for r in singles]
        # Partitions: singletons, pairs, the whole set.
        for size in (1, 2, len(specs)):
            tasks = _tasks(specs)
            got = []
            for lo in range(0, len(tasks), size):
                got.extend(simulate_fastpath_batch(tasks[lo : lo + size]))
            assert [_run_key(r) for r in got] == expected, f"batch size {size}"

    def test_kernel_shuffled_grouping_invariance(self):
        specs = [s for s in FIXED_SPECS if s.n == 7]
        expected = {
            spec.scenario_id: _run_key(run)
            for spec, run in zip(
                specs, simulate_fastpath_batch(_tasks(specs))
            )
        }
        order = list(range(len(specs)))
        random.Random(7).shuffle(order)
        shuffled = [specs[i] for i in order]
        for spec, run in zip(
            shuffled, simulate_fastpath_batch(_tasks(shuffled))
        ):
            assert _run_key(run) == expected[spec.scenario_id]

    def test_executor_partition_and_jobs_invariance(self):
        serial = execute_scenarios(FIXED_SPECS, backend=BACKEND_BATCHED)
        expected = [journal_line(r) for r in serial]
        assert all(r.backend == BACKEND_BATCHED for r in serial)
        for jobs, chunksize in ((1, 2), (2, 1), (2, 3), (3, 4)):
            results = execute_scenarios(
                FIXED_SPECS,
                jobs=jobs,
                chunksize=chunksize,
                backend=BACKEND_BATCHED,
            )
            assert [journal_line(r) for r in results] == expected, (
                jobs,
                chunksize,
            )

    def test_campaign_journal_and_summary_bytes_jobs_invariant(self, tmp_path):
        blobs = {}
        for jobs in (1, 3):
            store = tmp_path / f"journal_j{jobs}.jsonl"
            campaign = Campaign(
                FIXED_SPECS, store=store, jobs=jobs, backend=BACKEND_BATCHED
            )
            report = campaign.run()
            assert report.errors == 0 and report.timeouts == 0
            summary = tmp_path / f"summary_j{jobs}.jsonl"
            campaign.write_summary(summary)
            # Journal append order is completion order (jobs-dependent);
            # the record *bytes* are not.
            blobs[jobs] = (
                sorted(store.read_text().splitlines()),
                summary.read_bytes(),
            )
        assert blobs[1] == blobs[3]

    def test_campaign_summaries_byte_identical_across_backends(self, tmp_path):
        payloads = {}
        for backend in (BACKEND_REFERENCE, BACKEND_VECTORIZED, BACKEND_BATCHED):
            campaign = Campaign(
                FIXED_SPECS,
                store=tmp_path / f"journal_{backend}.jsonl",
                backend=backend,
            )
            report = campaign.run()
            assert report.errors == 0 and report.timeouts == 0
            summary = tmp_path / f"summary_{backend}.jsonl"
            campaign.write_summary(summary)
            payloads[backend] = summary.read_bytes()
        assert payloads[BACKEND_REFERENCE] == payloads[BACKEND_VECTORIZED]
        assert payloads[BACKEND_REFERENCE] == payloads[BACKEND_BATCHED]

    def test_resume_across_batched_and_reference(self, tmp_path):
        # A journal written by the batched backend satisfies resume for
        # the reference backend (ids and metrics agree) and vice versa.
        store = tmp_path / "journal.jsonl"
        Campaign(FIXED_SPECS, store=store, backend=BACKEND_BATCHED).run()
        report = Campaign(
            FIXED_SPECS, store=store, backend=BACKEND_REFERENCE
        ).run()
        assert report.executed == 0
        assert report.skipped == report.total


# ----------------------------------------------------------------------
# Dispatch: segmentation, auto preference, isolation
# ----------------------------------------------------------------------
class TestBatchedDispatch:
    UNSUPPORTED = ScenarioSpec(
        n=7, k=2, adversary="crash", algorithm="floodmin", options=(("f", 1),)
    )

    def test_auto_prefers_batched(self):
        pair = [ScenarioSpec(n=6, k=2, num_groups=2, seed=s) for s in range(2)]
        results = execute_scenarios(pair, backend=BACKEND_AUTO)
        assert [r.backend for r in results] == ["batched", "batched"]

    def test_auto_singleton_tag_is_partition_independent(self):
        # A compatible singleton runs through the (one-lane) batch kernel
        # too, so the journaled provenance is a pure function of the spec
        # — a chunk boundary cutting an ensemble cannot change bytes.
        (result,) = execute_scenarios(
            [ScenarioSpec(n=6, k=2, num_groups=2, seed=0)],
            backend=BACKEND_AUTO,
        )
        assert result.backend == BACKEND_BATCHED

    def test_auto_journal_bytes_jobs_invariant(self):
        serial = execute_scenarios(FIXED_SPECS, backend=BACKEND_AUTO)
        expected = [journal_line(r) for r in serial]
        chunked = execute_scenarios(
            FIXED_SPECS, jobs=2, chunksize=1, backend=BACKEND_AUTO
        )
        assert [journal_line(r) for r in chunked] == expected

    def test_auto_mixed_worklist_preserves_order_and_metrics(self):
        specs = [
            ScenarioSpec(n=7, k=2, num_groups=2, seed=0, noise=0.2),
            ScenarioSpec(n=7, k=2, num_groups=2, seed=1, noise=0.2),
            self.UNSUPPORTED,
            ScenarioSpec(n=7, k=2, num_groups=2, seed=2, noise=0.2),
        ]
        results = execute_scenarios(specs, backend=BACKEND_AUTO)
        assert [r.scenario_id for r in results] == [
            s.scenario_id for s in specs
        ]
        assert [r.backend for r in results] == [
            "batched",
            "batched",
            "reference",
            "batched",
        ]
        for spec, result in zip(specs, results):
            assert canonical_line(result) == canonical_line(
                execute_scenario(spec)
            )

    def test_auto_falls_back_when_fastpath_rejects_lazily(self):
        # An adversary the fast path cannot drive (adjacency_stack raises
        # FastPathUnsupported) but the reference simulator can: under
        # auto the lane must fall back to the reference simulator — not
        # surface a forced-backend error — even when it was routed
        # through a mega-batch.
        from repro.adversaries.grouped import GroupedSourceAdversary
        from repro.engine.scenarios import register_adversary
        from repro.rounds.fastpath import FastPathUnsupported

        class _NoStack(GroupedSourceAdversary):
            def adjacency_stack(self, rounds, start=1):
                raise FastPathUnsupported("no vectorizable randomness")

        register_adversary(
            "no-stack-test",
            lambda spec: _NoStack(spec.n, num_groups=2, seed=spec.seed),
        )
        specs = [
            ScenarioSpec(n=6, k=2, adversary="no-stack-test", seed=s)
            for s in range(2)
        ]
        results = execute_scenarios(specs, backend=BACKEND_AUTO)
        assert [r.status for r in results] == ["ok", "ok"]
        assert [r.backend for r in results] == ["reference", "reference"]
        # A forced batched backend reports the same lanes as errors.
        forced = execute_scenarios(specs, backend=BACKEND_BATCHED)
        assert all(
            r.status == "error" and "FastPathUnsupported" in r.error
            for r in forced
        )

    def test_forced_batched_reports_unsupported_as_error(self):
        specs = [
            ScenarioSpec(n=7, k=2, num_groups=2, seed=0),
            self.UNSUPPORTED,
        ]
        good, bad = execute_scenarios(specs, backend=BACKEND_BATCHED)
        assert good.status == "ok" and good.backend == BACKEND_BATCHED
        assert bad.status == "error" and bad.backend == BACKEND_BATCHED
        assert "FastPathUnsupported" in bad.error

    def test_bad_lane_does_not_poison_batchmates(self):
        # An adversary whose construction fails yields one error record;
        # its same-n batchmates still execute (and stay exact).
        good = ScenarioSpec(n=6, k=2, num_groups=2, seed=0)
        bad = ScenarioSpec(n=6, k=2, num_groups=7, seed=0)  # m > n
        results = execute_scenario_batch([good, bad, good.with_options()])
        assert results[0].status == "ok"
        assert results[1].status == "error"
        assert canonical_line(results[0]) == canonical_line(
            execute_scenario(good)
        )

    def test_batch_compatible_predicate(self):
        assert batch_compatible(ScenarioSpec(n=5, k=2))
        assert not batch_compatible(self.UNSUPPORTED)
        # Custom-runner family without a fast twin: not batchable even
        # though its algorithm is fast-path-supported.
        figure1 = ScenarioSpec(
            n=10, k=3, adversary="figure1", max_rounds=9,
            options=(("family", "figure1"),),
        )
        assert not batch_compatible(figure1)

    def test_envelope_sized_for_largest_round_budget(self, monkeypatch):
        # The memory cap must account for the largest max_rounds sharing
        # a batch, not just the first spec's — the shared schedule stack
        # is (S, max-over-lanes-R, n, n).  The scheduler buckets round
        # budgets by power-of-two ceiling, so wildly different budgets
        # land in *different* batches and each width is computed from
        # its own group's largest budget.
        import repro.engine.scheduler as scheduler

        calls = []
        real = scheduler.default_batch_size

        def spy(n, rounds, budget_bytes=None):
            calls.append((n, rounds))
            return real(n, rounds, budget_bytes=budget_bytes)

        monkeypatch.setattr(scheduler, "default_batch_size", spy)
        specs = [
            ScenarioSpec(n=5, k=2, num_groups=2, seed=0, max_rounds=10),
            ScenarioSpec(n=5, k=2, num_groups=2, seed=1, max_rounds=500),
            ScenarioSpec(n=5, k=2, num_groups=2, seed=2, max_rounds=20),
        ]
        results = execute_scenarios(specs, backend=BACKEND_BATCHED)
        for spec, result in zip(specs, results):
            assert canonical_line(result) == canonical_line(
                execute_scenario(spec)
            )
        assert (5, 500) in calls
        # The 500-round lane must not have inflated the other groups'
        # schedule stacks: every width call saw its own group's budget.
        assert (5, 10) in calls and (5, 20) in calls

    def test_default_batch_size_envelope(self):
        assert default_batch_size(6, 56) >= 2
        assert default_batch_size(6, 56) <= 64
        # The envelope shrinks as lanes get heavier, never below 1.
        assert default_batch_size(200, 1220) >= 1
        assert default_batch_size(200, 1220) <= default_batch_size(6, 56)
        # --batch-memory plumbs straight into the budget: a tiny
        # envelope degrades the width to 1 lane, never below.
        assert default_batch_size(6, 56, budget_bytes=1) == 1
        assert default_batch_size(6, 56, budget_bytes=2**40) == 64
        with pytest.raises(ValueError):
            default_batch_size(0, 10)


# ----------------------------------------------------------------------
# Lane compaction: heterogeneous-latency batches, scheduler-planned
# ----------------------------------------------------------------------
def _hetero_grid() -> list[ScenarioSpec]:
    """A same-``n``-heavy grid whose lanes retire at wildly different
    rounds: quiet grouped lanes decide just past ``r > n`` while noisy,
    crashed and partitioned lanes straggle (some to their full round
    budget) — the worst case for mask-only batching, the target case
    for compaction.  The noise/adversary axes are *interleaved* so the
    historical contiguous-segment packing would also have fragmented it.
    """
    specs: list[ScenarioSpec] = []
    for seed in range(3):
        for n in (7, 9):
            specs.append(
                ScenarioSpec(n=n, k=2, num_groups=2, seed=seed, noise=0.0)
            )
            specs.append(
                ScenarioSpec(n=n, k=2, num_groups=2, seed=seed, noise=0.5)
            )
            specs.append(
                ScenarioSpec(
                    n=n, k=2, seed=seed, adversary="crash",
                    options=(("f", max(1, n // 3)),),
                )
            )
            specs.append(
                ScenarioSpec(
                    n=n, k=2, seed=seed, adversary="partition",
                    options=(("k_env", 2),),
                )
            )
            specs.append(
                ScenarioSpec(
                    n=n, k=2, num_groups=2, seed=seed, noise=0.3,
                    options=(("purge_window", n - 1),),
                )
            )
    return specs


HETERO_GRID = _hetero_grid()


class TestCompactionEquivalence:
    """Compaction and refill are pure execution-shape knobs: results,
    journal bytes and summaries are identical with compaction on/off,
    at any kernel width, under batch shuffle and at any jobs count."""

    def test_kernel_compaction_width_refill_equivalence(self):
        specs = [s for s in HETERO_GRID if s.n == 9]
        singles = [
            simulate_fastpath(
                t.adjacency, list(t.initial_values), max_rounds=t.max_rounds
            )
            for t in _tasks(specs)
        ]
        expected = [_run_key(r) for r in singles]
        for kwargs in (
            {"compact": False},
            {"compact": True},
            {"compact": True, "width": 3},
            {"compact": False, "width": 3},
            {"compact": True, "width": 1},
        ):
            got = simulate_fastpath_batch(_tasks(specs), **kwargs)
            assert [_run_key(r) for r in got] == expected, kwargs

    @pytest.mark.parametrize("compact", [True, False])
    def test_width_caps_concurrent_lanes(self, compact, monkeypatch):
        # The memory envelope is a hard cap in both modes: refill
        # (compact on) and generation drain (compact off) must never
        # run the kernel wider than ``width`` lanes.
        import repro.rounds.fastpath as fastpath

        specs = [s for s in HETERO_GRID if s.n == 9]
        n = 9
        peak = 0
        real = fastpath.batched_transitive_closure

        def spy(stack, **kwargs):
            nonlocal peak
            peak = max(peak, stack.shape[0] // n)
            return real(stack, **kwargs)

        monkeypatch.setattr(fastpath, "batched_transitive_closure", spy)
        singles = [
            simulate_fastpath(
                t.adjacency, list(t.initial_values), max_rounds=t.max_rounds
            )
            for t in _tasks(specs)
        ]
        peak = 0
        runs = simulate_fastpath_batch(
            _tasks(specs), width=3, compact=compact
        )
        assert peak <= 3
        assert [_run_key(r) for r in runs] == [_run_key(r) for r in singles]

    @pytest.mark.parametrize(
        "spec", HETERO_GRID, ids=lambda s: f"{s.adversary}-n{s.n}-{s.seed}"
    )
    def test_three_backends_agree_on_hetero_grid(self, spec):
        line = canonical_line(execute_scenario(spec))
        assert canonical_line(execute_scenario_vectorized(spec)) == line
        assert canonical_line(
            execute_scenario_with_backend(spec, BACKEND_BATCHED)
        ) == line

    def test_journal_bytes_invariant_under_compaction_and_shuffle(self):
        serial = execute_scenarios(HETERO_GRID, backend=BACKEND_BATCHED)
        expected = {
            r.scenario_id: journal_line(r) for r in serial
        }
        no_compact = execute_scenarios(
            HETERO_GRID, backend=BACKEND_BATCHED, compact=False
        )
        assert [journal_line(r) for r in no_compact] == [
            journal_line(r) for r in serial
        ]
        shuffled = list(HETERO_GRID)
        random.Random(11).shuffle(shuffled)
        for spec, result in zip(
            shuffled, execute_scenarios(shuffled, backend=BACKEND_BATCHED)
        ):
            assert journal_line(result) == expected[spec.scenario_id]

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_journal_bytes_invariant_across_jobs(self, jobs):
        serial = execute_scenarios(HETERO_GRID, backend=BACKEND_BATCHED)
        results = execute_scenarios(
            HETERO_GRID, jobs=jobs, backend=BACKEND_BATCHED
        )
        assert [journal_line(r) for r in results] == [
            journal_line(r) for r in serial
        ]

    def test_hetero_summaries_byte_identical_across_backends(self, tmp_path):
        payloads = {}
        for backend in (BACKEND_REFERENCE, BACKEND_VECTORIZED, BACKEND_BATCHED):
            campaign = Campaign(
                HETERO_GRID,
                store=tmp_path / f"journal_{backend}.jsonl",
                backend=backend,
            )
            report = campaign.run()
            assert report.errors == 0 and report.timeouts == 0
            summary = tmp_path / f"summary_{backend}.jsonl"
            campaign.write_summary(summary)
            payloads[backend] = summary.read_bytes()
        assert payloads[BACKEND_REFERENCE] == payloads[BACKEND_VECTORIZED]
        assert payloads[BACKEND_REFERENCE] == payloads[BACKEND_BATCHED]

    def test_tiny_batch_memory_envelope_keeps_journal_bytes(self, tmp_path):
        # campaign run --batch-memory: a degenerate 1-MiB envelope packs
        # one-lane batches; journals must stay byte-identical.
        blobs = {}
        for label, batch_memory in (("default", None), ("tiny", 2**20)):
            store = tmp_path / f"journal_{label}.jsonl"
            campaign = Campaign(
                FIXED_SPECS,
                store=store,
                backend=BACKEND_BATCHED,
                batch_memory=batch_memory,
            )
            report = campaign.run()
            assert report.errors == 0 and report.timeouts == 0
            summary = tmp_path / f"summary_{label}.jsonl"
            campaign.write_summary(summary)
            blobs[label] = (
                sorted(store.read_text().splitlines()),
                summary.read_bytes(),
            )
        assert blobs["default"] == blobs["tiny"]

    def test_cli_batch_memory_flag(self, tmp_path, capsys):
        from repro.cli import main

        store_a = tmp_path / "a.jsonl"
        store_b = tmp_path / "b.jsonl"
        args = ["-n", "6", "-k", "2", "--seeds", "2", "--no-progress"]
        code_a = main(
            ["campaign", "run", "--store", str(store_a), "--backend",
             "batched", "--summary", str(tmp_path / "a_sum.jsonl")] + args
        )
        code_b = main(
            ["campaign", "run", "--store", str(store_b), "--backend",
             "batched", "--batch-memory", "1",
             "--summary", str(tmp_path / "b_sum.jsonl")] + args
        )
        assert code_a == 0 and code_b == 0
        assert sorted(store_a.read_text().splitlines()) == sorted(
            store_b.read_text().splitlines()
        )
        assert (tmp_path / "a_sum.jsonl").read_bytes() == (
            tmp_path / "b_sum.jsonl"
        ).read_bytes()


# ----------------------------------------------------------------------
# Registered families on the batched backend
# ----------------------------------------------------------------------
class TestFamilyBatched:
    PARAMS = {
        "termination": {"n": [5, 6], "seeds": 2},
        "sweeps": {"n": [5, 6], "k": [2], "seeds": 2, "noise": (0.1,)},
        "latency": {"n": [5, 6], "seeds": 2, "noise": (0.1,)},
        "eventual": {"n": [5], "bad_rounds": (0, 2, 5), "seeds": 1},
    }

    @pytest.mark.parametrize("family", sorted(PARAMS))
    def test_family_batched_matches_reference(self, family):
        params = self.PARAMS[family]
        reference = run_family(family, params, backend=BACKEND_REFERENCE)
        batched = run_family(family, params, backend=BACKEND_BATCHED)
        assert [canonical_line(r) for r in reference] == [
            canonical_line(r) for r in batched
        ]
        assert all(r.backend == BACKEND_BATCHED for r in batched)

    def test_eventual_twin_preserves_extras(self):
        params = self.PARAMS["eventual"]
        reference = run_family("eventual", params, backend=BACKEND_REFERENCE)
        batched = run_family("eventual", params, backend=BACKEND_BATCHED)
        for ref, bat in zip(reference, batched):
            assert ref.extras == bat.extras
            assert isinstance(bat.extra("all_decided_own"), bool)

    def test_ablation_auto_routes_vectorizable_arms(self):
        # The ablation family's non-hooked variants carry a fast twin:
        # under auto they ride the batched kernel while the invariant-
        # hook arm and the bespoke line-27 variant stay on the reference
        # simulator — with byte-identical canonical lines throughout.
        params = {"n": 6, "k": 2, "seeds": 2}
        reference = run_family("ablation", params, backend=BACKEND_REFERENCE)
        auto = run_family("ablation", params, backend=BACKEND_AUTO)
        assert [canonical_line(r) for r in reference] == [
            canonical_line(r) for r in auto
        ]
        by_variant: dict[str, set] = {}
        for r in auto:
            by_variant.setdefault(r.spec.opt("variant"), set()).add(r.backend)
        assert by_variant["paper (window=n, prune, PT-min)"] == {"batched"}
        assert by_variant["window=n/2"] == {"batched"}
        assert by_variant["no pruning"] == {"batched"}
        assert by_variant["window=2n"] == {"reference"}
        assert by_variant["min over all received"] == {"reference"}

    def test_ablation_batch_compatibility_is_per_arm(self):
        from repro.experiments.ablation import ablation_spec

        assert batch_compatible(
            ablation_spec("paper", 6, 2, 0, hooks=False)
        )
        assert not batch_compatible(ablation_spec("hooked", 6, 2, 0))
        assert not batch_compatible(
            ablation_spec("m", 6, 2, 0, min_over_all=True, hooks=False)
        )

    def test_partial_coverage_family_rejects_forced_fast_backends(self):
        # Partial fast-path coverage is auto-only: forcing batched or
        # vectorized on the ablation family is rejected up front (its
        # reference-only arms would come back as error records).
        with pytest.raises(ValueError, match="does not support"):
            family_campaign("ablation", backend=BACKEND_BATCHED)
        with pytest.raises(ValueError, match="does not support"):
            family_campaign("ablation", backend=BACKEND_VECTORIZED)


# ----------------------------------------------------------------------
# The static adversary registration (new differential-grid corner)
# ----------------------------------------------------------------------
class TestStaticAdversary:
    def test_spec_round_trips(self):
        spec = ScenarioSpec(n=6, k=2, adversary="static", seed=4, noise=0.3)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_declared_stable_equals_every_round(self):
        spec = ScenarioSpec(n=6, k=2, adversary="static", seed=4, noise=0.3)
        adversary = spec.build_adversary()
        stack = adversary.adjacency_stack(9)
        declared = adversary.declared_stable_matrix()
        assert np.array_equal(stack, np.broadcast_to(declared, stack.shape))

    def test_deterministic_from_seed(self):
        spec = ScenarioSpec(n=8, k=2, adversary="static", seed=11, noise=0.2)
        a = spec.build_adversary().adjacency_stack(5)
        b = spec.build_adversary().adjacency_stack(5)
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Cross-n packing, work stealing, and the Array-API namespace
# ----------------------------------------------------------------------
MIXED_N_SPECS = [
    ScenarioSpec(n=n, k=2, num_groups=2, seed=s, noise=0.2)
    for n in (4, 5, 6, 7)
    for s in range(6)
]


class TestCrossWidthPacking:
    """Mixed-n grids through one padded tensor program: bit-identical."""

    def test_packed_kernel_matches_singletons(self):
        singles = [
            simulate_fastpath(
                t.adjacency, list(t.initial_values), max_rounds=t.max_rounds
            )
            for t in _tasks(MIXED_N_SPECS)
        ]
        expected = [_run_key(r) for r in singles]
        # Full-width mixed batch, a narrow refilling window, and the
        # narrow window without compaction: padding must be invisible.
        for kwargs in ({}, {"width": 3}, {"width": 3, "compact": False}):
            runs = simulate_fastpath_batch(_tasks(MIXED_N_SPECS), **kwargs)
            assert [_run_key(r) for r in runs] == expected, kwargs

    def test_three_backends_agree_on_packed_grid(self):
        packed = execute_scenarios(
            MIXED_N_SPECS, backend=BACKEND_BATCHED, pack_widths=True
        )
        for spec, result in zip(MIXED_N_SPECS, packed):
            assert result.status == "ok", result.error
            line = canonical_line(result)
            assert line == canonical_line(execute_scenario(spec))
            assert line == canonical_line(execute_scenario_vectorized(spec))

    def test_journal_bytes_invariant_under_pack_steal_jobs_compaction(self):
        expected = [
            journal_line(r)
            for r in execute_scenarios(MIXED_N_SPECS, backend=BACKEND_BATCHED)
        ]
        combos = [
            # (pack, steal, jobs, compact) — every axis of the product
            # is exercised against the serial unpacked baseline.
            (True, False, 1, True),
            (True, False, 1, False),
            (False, False, 2, True),
            (True, False, 2, True),
            (False, True, 2, True),
            (True, True, 2, True),
            (True, True, 2, False),
            (False, True, 4, True),
            (True, True, 4, True),
        ]
        for pack, steal, jobs, compact in combos:
            results = execute_scenarios(
                MIXED_N_SPECS,
                jobs=jobs,
                backend=BACKEND_BATCHED,
                pack_widths=pack,
                steal=steal,
                compact=compact,
            )
            assert [journal_line(r) for r in results] == expected, (
                pack, steal, jobs, compact,
            )

    def test_packed_deterministic_plane_matches_unpacked_kernel_work(self):
        # Packing pads the *tensors*, never the per-lane programs: the
        # kernel's deterministic counters (rounds, decisions, RNG
        # fetches) are identical with packing on or off.
        from repro.engine.telemetry import Recorder

        kernel = {}
        for pack in (False, True):
            rec = Recorder()
            execute_scenarios(
                MIXED_N_SPECS,
                backend=BACKEND_BATCHED,
                pack_widths=pack,
                recorder=rec,
            )
            counters = rec.snapshot()["deterministic"]["counters"]
            kernel[pack] = {
                k: v for k, v in counters.items() if k.startswith("kernel.")
            }
        assert kernel[False] == kernel[True]

    def test_campaign_summary_bytes_pack_invariant(self, tmp_path):
        blobs = {}
        for pack in (False, True):
            store = tmp_path / f"journal_pack{pack}.jsonl"
            campaign = Campaign(
                MIXED_N_SPECS,
                store=store,
                jobs=2,
                backend=BACKEND_BATCHED,
                pack_widths=pack,
                steal=pack,
            )
            report = campaign.run()
            assert report.errors == 0 and report.timeouts == 0
            summary = tmp_path / f"summary_pack{pack}.jsonl"
            campaign.write_summary(summary)
            blobs[pack] = (
                sorted(store.read_text().splitlines()),
                summary.read_bytes(),
            )
        assert blobs[False] == blobs[True]


class TestArrayNamespaceSubstitution:
    """The kernel runs unchanged on a strict Array-API namespace."""

    def test_strict_namespace_bit_identical(self):
        expected = [
            _run_key(r) for r in simulate_fastpath_batch(_tasks(MIXED_N_SPECS))
        ]
        for kwargs in ({}, {"width": 4}, {"compact": False}):
            runs = simulate_fastpath_batch(
                _tasks(MIXED_N_SPECS), namespace="strict", **kwargs
            )
            assert [_run_key(r) for r in runs] == expected, kwargs

    def test_env_device_reaches_the_executor(self, monkeypatch):
        specs = MIXED_N_SPECS[:8]
        expected = [
            journal_line(r)
            for r in execute_scenarios(specs, backend=BACKEND_BATCHED)
        ]
        monkeypatch.setenv("REPRO_DEVICE", "strict")
        results = execute_scenarios(
            specs, backend=BACKEND_BATCHED, pack_widths=True
        )
        assert [journal_line(r) for r in results] == expected


class TestSkeletonCache:
    """The cross-batch Psrcs/root-component LRU must stay invisible."""

    def test_journal_bytes_cache_invariant(self):
        from repro.engine.backends import SkeletonCache, skeleton_cache

        specs = MIXED_N_SPECS[:8]
        skeleton_cache.clear()
        cold = [journal_line(r) for r in execute_scenario_batch(specs)]
        assert skeleton_cache.misses > 0
        # Second pass: served from the memo, bytes unchanged.
        hits0 = skeleton_cache.hits
        warm = [journal_line(r) for r in execute_scenario_batch(specs)]
        assert warm == cold
        assert skeleton_cache.hits > hits0
        # A tiny cache that evicts constantly still changes nothing.
        import repro.engine.backends as backends_mod

        original = backends_mod.skeleton_cache
        backends_mod.skeleton_cache = SkeletonCache(max_entries=1)
        try:
            tiny = [journal_line(r) for r in execute_scenario_batch(specs)]
        finally:
            backends_mod.skeleton_cache = original
        assert tiny == cold

    def test_lru_bounds_and_counters(self):
        from repro.engine.backends import SkeletonCache

        cache = SkeletonCache(max_entries=2)
        assert cache.get("a", lambda: 1) == 1
        assert cache.get("b", lambda: 2) == 2
        assert cache.get("a", lambda: -1) == 1  # hit refreshes recency
        cache.get("c", lambda: 3)  # evicts "b", the least recent
        assert len(cache) == 2
        assert cache.get("b", lambda: 20) == 20  # recomputed: was evicted
        assert cache.hits == 1
        assert cache.misses == 4
        cache.clear()
        assert len(cache) == 0

    def test_hit_miss_counters_reach_the_volatile_plane(self):
        from repro.engine.backends import skeleton_cache
        from repro.engine.telemetry import Recorder

        specs = MIXED_N_SPECS[:6]
        skeleton_cache.clear()
        rec = Recorder()
        execute_scenario_batch(specs, recorder=rec)
        vol = rec.snapshot()["volatile"]
        assert vol["counters"]["backends.skeleton_cache_misses"] > 0
        assert vol["gauges"]["backends.skeleton_cache_entries"] >= 1
        # Deterministic plane untouched: the cache is an execution
        # detail, never part of the result contract.
        rec2 = Recorder()
        execute_scenario_batch(specs, recorder=rec2)
        assert rec2.snapshot()["volatile"]["counters"][
            "backends.skeleton_cache_hits"
        ] > 0
