"""Execute the doctest examples embedded in module/class docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.analysis.reporting
import repro.graphs.digraph
import repro.graphs.labeled

MODULES = [
    repro.analysis.reporting,
    repro.graphs.digraph,
    repro.graphs.labeled,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "no doctests found — examples were removed?"


def test_package_quickstart_doctest():
    # The repro.__init__ quickstart runs a real simulation; execute it.
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
