"""Tests for the HO / RRFD adapters and the correspondence (6)/(7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import gnp_random
from repro.homodel.heard_of import HeardOfCollection
from repro.homodel.rrfd import RoundByRoundFaultDetector


def random_graphs(n=6, rounds=5, seed=0, p=0.4):
    rng = np.random.default_rng(seed)
    return [gnp_random(n, p, rng, self_loops=True) for _ in range(rounds)]


class TestHeardOf:
    def test_from_graphs_roundtrip(self):
        graphs = random_graphs()
        ho = HeardOfCollection.from_graphs(graphs)
        assert ho.graphs() == graphs

    def test_ho_is_in_neighborhood(self):
        graphs = random_graphs(seed=1)
        ho = HeardOfCollection.from_graphs(graphs)
        for r, g in enumerate(graphs, start=1):
            for p in range(6):
                assert ho.ho(p, r) == g.predecessors(p)

    def test_equation_7_prefix_intersection(self):
        # PT(p, r) = ∩_{r' <= r} HO(p, r').
        graphs = random_graphs(seed=2)
        ho = HeardOfCollection.from_graphs(graphs)
        skel = graphs[0]
        for r in range(1, len(graphs) + 1):
            if r > 1:
                skel = skel.intersection(graphs[r - 1])
            for p in range(6):
                assert ho.timely_neighborhood(p, r) == skel.predecessors(p)

    def test_round_bounds(self):
        ho = HeardOfCollection.from_graphs(random_graphs(rounds=2))
        with pytest.raises(IndexError):
            ho.ho(0, 3)
        with pytest.raises(IndexError):
            ho.ho(0, 0)

    def test_unknown_processes_rejected(self):
        with pytest.raises(ValueError):
            HeardOfCollection(2, [{0: frozenset({5})}])

    def test_missing_entries_default_empty(self):
        ho = HeardOfCollection(3, [{0: frozenset({1})}])
        assert ho.ho(2, 1) == frozenset()

    def test_from_run(self):
        from repro.adversaries.grouped import GroupedSourceAdversary
        from repro.core.algorithm import make_processes
        from repro.rounds.simulator import RoundSimulator, SimulationConfig

        adv = GroupedSourceAdversary(5, num_groups=2, seed=0)
        run = RoundSimulator(
            make_processes(5), adv, SimulationConfig(max_rounds=12)
        ).run()
        ho = HeardOfCollection.from_run(run)
        assert ho.num_rounds == run.num_rounds
        for r in range(1, run.num_rounds + 1):
            assert ho.graph(r) == run.graph(r)

    def test_needs_graphs(self):
        with pytest.raises(ValueError):
            HeardOfCollection.from_graphs([])

    def test_repr(self):
        ho = HeardOfCollection.from_graphs(random_graphs(rounds=2))
        assert "rounds=2" in repr(ho)


class TestRRFD:
    def test_complement_correspondence(self):
        # D(p, r) = Π \ HO(p, r) — the paper's simplification.
        graphs = random_graphs(seed=3)
        ho = HeardOfCollection.from_graphs(graphs)
        rrfd = RoundByRoundFaultDetector.from_heard_of(ho)
        everyone = frozenset(range(6))
        for r in range(1, len(graphs) + 1):
            for p in range(6):
                assert rrfd.suspected(p, r) == everyone - ho.ho(p, r)

    def test_roundtrip_through_ho(self):
        graphs = random_graphs(seed=4)
        rrfd = RoundByRoundFaultDetector.from_graphs(graphs)
        assert rrfd.to_heard_of().graphs() == graphs

    def test_equation_7_union_complement(self):
        # PT(p, r) = Π \ ∪_{r' <= r} D(p, r').
        graphs = random_graphs(seed=5)
        ho = HeardOfCollection.from_graphs(graphs)
        rrfd = RoundByRoundFaultDetector.from_heard_of(ho)
        for r in range(1, len(graphs) + 1):
            for p in range(6):
                assert rrfd.timely_neighborhood(p, r) == ho.timely_neighborhood(p, r)

    def test_graph_conversion(self):
        graphs = random_graphs(seed=6)
        rrfd = RoundByRoundFaultDetector.from_graphs(graphs)
        for r, g in enumerate(graphs, start=1):
            assert rrfd.graph(r) == g

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundByRoundFaultDetector(2, [{0: frozenset({7})}])
        rrfd = RoundByRoundFaultDetector(2, [{0: frozenset({1})}])
        with pytest.raises(IndexError):
            rrfd.suspected(0, 5)

    def test_repr(self):
        rrfd = RoundByRoundFaultDetector(2, [{}])
        assert "n=2" in repr(rrfd)


class TestPredicateOnHeardOf:
    def test_check_heard_of_matches_run_check(self):
        from repro.adversaries.grouped import GroupedSourceAdversary
        from repro.core.algorithm import make_processes
        from repro.predicates.psrcs import Psrcs
        from repro.rounds.simulator import RoundSimulator, SimulationConfig

        adv = GroupedSourceAdversary(8, num_groups=2, seed=3, noise=0.3)
        run = RoundSimulator(
            make_processes(8), adv, SimulationConfig(max_rounds=40)
        ).run()
        ho = HeardOfCollection.from_run(run)
        # The prefix covers stabilization, so the HO check agrees with the
        # declared-skeleton check.
        for k in (1, 2, 3):
            assert (
                Psrcs(k).check_heard_of(ho).holds
                == Psrcs(k).check_skeleton(run.stable_skeleton()).holds
            )

    def test_check_heard_of_violation_definitive(self):
        from repro.predicates.psrcs import Psrcs

        # one round, everyone isolated: the prefix skeleton already
        # violates Psrcs(n-1).
        n = 4
        ho = HeardOfCollection(
            n, [{p: frozenset({p}) for p in range(n)}]
        )
        assert not Psrcs(n - 1).check_heard_of(ho).holds
