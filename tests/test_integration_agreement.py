"""ALG-AGREE / ALG-TERM integration: Theorem 16 end-to-end over sweeps,
with every lemma checker attached."""

from __future__ import annotations

import pytest

from repro.adversaries.crash import CrashAdversary
from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.properties import check_agreement_properties
from repro.analysis.stats import decision_stats
from repro.core.consensus import (
    consensus_was_guaranteed,
    run_reached_consensus,
)
from repro.core.invariants import make_invariant_hook
from repro.experiments.sweeps import (
    agreement_sweep,
    run_algorithm1,
    termination_sweep,
)
from repro.predicates.psrcs import Psrcs


class TestTheorem16EndToEnd:
    """k-agreement + validity + termination under Psrcs(k)."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n,k,m", [(8, 2, 2), (9, 3, 3), (12, 4, 3)])
    def test_noisy_grouped_runs(self, n, k, m, seed):
        adv = GroupedSourceAdversary(n, num_groups=m, seed=seed, noise=0.25)
        run = run_algorithm1(adv, invariant_hooks=[make_invariant_hook()])
        assert Psrcs(k).check_skeleton(run.stable_skeleton()).holds
        report = check_agreement_properties(run, k)
        assert report.all_hold, report.summary()

    @pytest.mark.parametrize("topology", ["star", "cycle", "clique"])
    def test_all_topologies(self, topology):
        adv = GroupedSourceAdversary(
            10, num_groups=3, seed=4, noise=0.2, topology=topology
        )
        run = run_algorithm1(adv)
        report = check_agreement_properties(run, 3)
        assert report.all_hold, report.summary()

    def test_noise_free_decisions_are_group_minima(self):
        n, m = 12, 3
        adv = GroupedSourceAdversary(n, num_groups=m, seed=0, noise=0.0)
        run = run_algorithm1(adv)
        expected = {min(g) for g in adv.groups}
        assert run.decision_values() == expected

    def test_sweep_helper_shape(self):
        rows = agreement_sweep(ns=[6, 8], ks=[2], seeds=[0])
        # (n=6,k=2,m∈{1,2}) + (n=8,k=2,m∈{1,2}) = 4 rows
        assert len(rows) == 4
        for row in rows:
            assert row.distinct_decisions <= row.k
            assert row.all_decided
            assert row.psrcs_holds


class TestLemma11Bound:
    """All decisions by round r_ST + 2n - 1."""

    @pytest.mark.parametrize("seed", range(5))
    def test_within_bound_noisy(self, seed):
        adv = GroupedSourceAdversary(8, num_groups=2, seed=seed, noise=0.3)
        run = run_algorithm1(adv)
        stats = decision_stats(run)
        assert stats.within_bound, stats

    @pytest.mark.parametrize("n", [4, 8, 12, 16])
    def test_within_bound_across_sizes(self, n):
        adv = GroupedSourceAdversary(n, num_groups=2, seed=1, noise=0.2)
        run = run_algorithm1(adv)
        stats = decision_stats(run)
        assert stats.num_decided == n
        assert stats.within_bound

    def test_termination_sweep_helper(self):
        rows = termination_sweep(ns=[6, 9], seeds=[0, 1])
        assert len(rows) == 4
        for row in rows:
            assert row.all_decided
            assert row.last_decision_round <= row.lemma11_bound


class TestConsensusRemark:
    """§V: the algorithm solves consensus in well-behaved runs."""

    def test_single_group_guarantees_consensus(self):
        adv = GroupedSourceAdversary(8, num_groups=1, seed=2, noise=0.2)
        run = run_algorithm1(adv)
        assert consensus_was_guaranteed(run)
        assert run_reached_consensus(run)

    @pytest.mark.parametrize("seed", range(4))
    def test_crash_runs_reach_consensus(self, seed):
        # crash adversary => survivors' complete graph => one root component
        adv = CrashAdversary(7, {0: 2, 1: 3, 2: 1}, seed=seed)
        run = run_algorithm1(adv)
        assert consensus_was_guaranteed(run)
        assert run_reached_consensus(run)
        report = check_agreement_properties(run, 1)
        assert report.all_hold, report.summary()

    def test_implication_direction(self):
        # consensus can happen without the structural guarantee, but the
        # guarantee always implies consensus; verify on a two-group run
        # where noise might collapse values.
        adv = GroupedSourceAdversary(6, num_groups=2, seed=3, noise=0.4)
        run = run_algorithm1(adv)
        if consensus_was_guaranteed(run):
            assert run_reached_consensus(run)
        # either way agreement for k=2 holds
        assert check_agreement_properties(run, 2).all_hold


class TestRecordedReplayFairness:
    def test_same_graph_sequence_for_two_algorithms(self):
        # The BASELINE experiment needs both algorithms to see the same run.
        from repro.adversaries.base import RecordedAdversary
        from repro.baselines.floodmin import make_floodmin_processes
        from repro.core.algorithm import make_processes
        from repro.rounds.simulator import RoundSimulator, SimulationConfig

        inner = GroupedSourceAdversary(6, num_groups=2, seed=9, noise=0.3)
        rec = RecordedAdversary(inner)
        run1 = RoundSimulator(
            make_processes(6), rec, SimulationConfig(max_rounds=30)
        ).run()
        run2 = RoundSimulator(
            make_floodmin_processes(6, f=2, k=2),
            rec,
            SimulationConfig(max_rounds=30),
        ).run()
        upto = min(run1.num_rounds, run2.num_rounds)
        for r in range(1, upto + 1):
            assert run1.graph(r) == run2.graph(r)
