"""FIG1 integration: the Figure 1 instance satisfies everything the paper's
text states about it."""

from __future__ import annotations

import pytest

from repro.analysis.properties import check_agreement_properties
from repro.core.invariants import make_invariant_hook
from repro.experiments.figure1 import (
    FIGURE1_N,
    P6,
    ROOT_COMPONENTS,
    TRANSIENT_EDGES,
    figure1_adversary,
    figure1_panels,
    figure1_run,
    render_figure1,
)
from repro.graphs.condensation import root_components
from repro.graphs.scc import is_strongly_connected
from repro.predicates.psrcs import Psrcs
from repro.rounds.simulator import RoundSimulator, SimulationConfig
from repro.core.algorithm import make_processes


class TestInstanceProperties:
    def test_psrcs3_holds(self):
        # Figure 1 caption: "A system of 6 processes where Psrcs(3) holds."
        stable = figure1_adversary().declared_stable_graph()
        assert Psrcs(3).check_skeleton(stable).holds

    def test_two_root_components(self):
        # §II: root components {p1,p2} and {p3,p4,p5}.
        stable = figure1_adversary().declared_stable_graph()
        assert set(root_components(stable)) == set(ROOT_COMPONENTS)

    def test_self_loops_everywhere(self):
        # caption: ∀pi: pi ∈ PT(pi).
        stable = figure1_adversary().declared_stable_graph()
        assert all(stable.has_edge(p, p) for p in range(FIGURE1_N))

    def test_round2_skeleton_strict_supergraph(self):
        run, _ = figure1_run()
        g2 = run.skeleton(2)
        stable = run.stable_skeleton()
        assert g2.is_supergraph_of(stable)
        assert g2 != stable
        for edge in TRANSIENT_EDGES:
            assert g2.has_edge(*edge)
            assert not stable.has_edge(*edge)

    def test_skeleton_stabilizes_at_round_3(self):
        run, _ = figure1_run()
        assert run.skeleton(3) == run.stable_skeleton()
        assert run.skeleton(2) != run.stable_skeleton()


class TestAlgorithmOnFigure1:
    def test_decisions(self):
        run, _ = figure1_run()
        report = check_agreement_properties(run, 3)
        assert report.all_hold, report.summary()
        # {p1,p2} decide min(1,2)=1; {p3,p4,p5} decide min(3,4,5)=3;
        # p6 adopts a root-component value.
        assert run.decision_values() == {1, 3}
        assert run.decisions[0].value == 1
        assert run.decisions[1].value == 1
        assert run.decisions[2].value == 3
        assert run.decisions[3].value == 3
        assert run.decisions[4].value == 3
        assert run.decisions[P6].value in {1, 3}

    def test_lemma_checkers_pass(self):
        procs = make_processes(FIGURE1_N, [i + 1 for i in range(FIGURE1_N)])
        run = RoundSimulator(
            procs,
            figure1_adversary(),
            SimulationConfig(max_rounds=25),
            invariant_hooks=[make_invariant_hook()],
        ).run()
        assert run.all_decided()

    def test_decisions_not_before_round_n_plus_1(self):
        run, _ = figure1_run()
        assert min(d.round_no for d in run.decisions.values()) >= FIGURE1_N + 1


class TestPanels:
    def test_panel_count(self):
        panels = figure1_panels()
        assert sorted(panels.approximations) == [1, 2, 3, 4, 5, 6]

    def test_approximations_grow_monotonically_early(self):
        # p6 discovers more of the graph each of the first rounds.
        panels = figure1_panels()
        sizes = [
            panels.approximations[r].number_of_edges() for r in range(1, 5)
        ]
        assert sizes == sorted(sizes)

    def test_round1_panel_is_pt_star(self):
        # After round 1 p6's graph is exactly its timely in-edges labeled 1.
        panels = figure1_panels()
        g1 = panels.approximations[1]
        expected_sources = {1, 3, 4, 5}  # p2, p4, p5 (+ self p6)
        assert {u for (u, v) in g1.edges() if v == P6} == expected_sources
        assert all(lbl == 1 for (_, _, lbl) in g1.labeled_edges())

    def test_p6_approximation_never_strongly_connected(self):
        # p6 has no outgoing stable edges, so its approximation contains
        # nodes that p6 cannot reach; it decides by adoption instead.
        run, procs = figure1_run()
        for r in range(1, run.num_rounds + 1):
            g = procs[P6].approximation_at(r).unweighted()
            if len(g.nodes()) > 1:
                assert not is_strongly_connected(g)

    def test_root_members_approximations_become_their_component(self):
        # Lemma 11's core: for p in a root component, G^{r+n-1}_p = C_p.
        run, procs = figure1_run()
        decide_round = run.decisions[0].round_no
        g = procs[0].approximation_at(decide_round).unweighted()
        assert g.nodes() == frozenset({0, 1})
        assert is_strongly_connected(g)

    def test_render_contains_all_panels(self):
        text = render_figure1()
        for letter in "abcdefgh":
            assert f"({letter})" in text
        assert "G^∩∞" in text
        assert "p5 --" in text  # labeled edges present

    def test_render_deterministic(self):
        assert render_figure1() == render_figure1()
