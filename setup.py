"""Legacy shim so editable installs work without the ``wheel`` package
(this environment is offline; pip's PEP 660 path needs bdist_wheel).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
