"""THM2: the impossibility construction — Psrcs(k) holds, Psrcs(k-1)
fails, and Algorithm 1 is forced to exactly k decision values."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.theorem2 import theorem2_experiment


def sweep():
    reports = []
    for n, k in [(4, 2), (6, 3), (8, 4), (12, 6), (16, 8), (32, 8)]:
        reports.append(theorem2_experiment(n, k))
    return reports


def test_bench_theorem2(benchmark, emit):
    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for rep in reports:
        assert rep.confirms_theorem, (rep.n, rep.k)
    rows = [
        [
            rep.n,
            rep.k,
            rep.psrcs_k_holds,
            rep.psrcs_k_minus_1_holds,
            rep.distinct_decisions,
            rep.isolated_decided_own,
            rep.agreement.all_hold,
        ]
        for rep in reports
    ]
    emit(
        format_table(
            [
                "n",
                "k",
                "Psrcs(k)",
                "Psrcs(k-1)",
                "distinct_decisions",
                "isolated_own_value",
                "k_agreement_ok",
            ],
            rows,
            title="THM2 — impossibility construction: exactly k values; "
            "(k-1)-set agreement unattainable (paper Theorem 2)",
        )
    )
