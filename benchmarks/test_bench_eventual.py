"""EVENTUAL-LB: ♦Psrcs(k) is too weak — the bad-prefix step function."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.eventual import eventual_lower_bound


def sweep(n=8):
    rows = []
    for bad in (0, 1, 2, 4, 8, 12, 20):
        rep = eventual_lower_bound(n, bad_rounds=bad)
        rows.append(
            [n, bad, rep.distinct_decisions, rep.all_decided_own]
        )
    return rows


def test_bench_eventual_lower_bound(benchmark, emit):
    n = 8
    rows = benchmark.pedantic(sweep, args=(n,), rounds=1, iterations=1)
    for _, bad, distinct, own in rows:
        if bad == 0:
            assert distinct == 1
        else:
            # PT is a prefix intersection: a single isolated round already
            # pins PT(p) = {p}, forcing all n own-value decisions — the
            # sharp form of the paper's ♦Psrcs impossibility discussion.
            assert distinct == n and own
    emit(
        format_table(
            ["n", "bad_prefix_rounds", "distinct_decisions", "all_decided_own"],
            rows,
            title="EVENTUAL-LB — ♦Psrcs step function: any isolated prefix "
            "collapses to n values (perpetual synchrony is necessary, §III)",
        )
    )
