"""ALG-AGREE: Theorem 16 — Algorithm 1 decides <= k values under
Psrcs(k), across the (n, k, groups, seed) sweep."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.sweeps import SweepResult, agreement_sweep


def test_bench_agreement_sweep(benchmark, emit):
    rows = benchmark.pedantic(
        agreement_sweep,
        kwargs=dict(ns=[6, 9, 12], ks=[1, 2, 3], seeds=[0, 1], noise=0.2),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row.psrcs_holds
        assert row.all_decided, row
        assert row.distinct_decisions <= row.k, row
    emit(
        format_table(
            SweepResult.HEADERS,
            [r.as_row() for r in rows],
            title="ALG-AGREE — Algorithm 1 under Psrcs(k): "
            "distinct decisions <= k in every run (Theorem 16)",
        )
    )


def test_bench_agreement_noise_free_tightness(benchmark, emit):
    """Noise-free designed runs decide exactly one value per root
    component — Lemma 15's one-to-one correspondence made visible."""
    rows = benchmark.pedantic(
        agreement_sweep,
        kwargs=dict(ns=[8, 12], ks=[2, 4], seeds=[0], noise=0.0),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row.distinct_decisions == row.num_groups, row
    emit(
        format_table(
            SweepResult.HEADERS,
            [r.as_row() for r in rows],
            title="ALG-AGREE — noise-free runs: decisions == root components "
            "(Lemma 15 correspondence, tight)",
        )
    )
