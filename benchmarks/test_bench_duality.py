"""DUALITY: the §V future-work exploration — predicate strength α(H) vs
structural difficulty rc(G) across skeleton ensembles."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.duality import chain_skeleton, duality_profile, duality_sweep


def test_bench_duality_sweep(benchmark, emit):
    rows = benchmark.pedantic(
        duality_sweep,
        kwargs=dict(ns=(6, 8, 10, 12), densities=(0.05, 0.15, 0.3),
                    seeds=range(5)),
        rounds=1,
        iterations=1,
    )
    assert all(row[5] == 0 for row in rows), "Theorem 1 violated"
    emit(
        format_table(
            ["n", "density", "mean rc", "mean α", "mean gap (α-rc)",
             "Thm1 violations"],
            rows,
            title="DUALITY — root components vs tightest Psrcs level over "
            "random skeletons (§V: rc <= α always; gap = predicate slack)",
        )
    )


def test_bench_duality_chain_gap(benchmark, emit):
    """The unbounded-gap witness: directed chains."""
    profiles = benchmark.pedantic(
        lambda: [duality_profile(chain_skeleton(n)) for n in (4, 8, 16, 32)],
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.n, p.root_components, p.alpha, p.gap] for p in profiles
    ]
    assert all(p.root_components == 1 for p in profiles)
    assert all(p.alpha == (p.n + 1) // 2 for p in profiles)
    emit(
        format_table(
            ["n", "rc (achievable k)", "α (tightest Psrcs)", "gap"],
            rows,
            title="DUALITY — directed chains: one root component but "
            "α = ⌈n/2⌉; Psrcs is far from necessary on such graphs",
        )
    )
