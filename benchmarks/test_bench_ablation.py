"""ABLATION: the design choices of Algorithm 1 (DESIGN.md §4) — purge
window, unreachable pruning, and the PT-restricted minimum of line 27."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.algorithm import SkeletonAgreementProcess
from repro.experiments.ablation import (
    AblationOutcome,
    MinOverAllProcess,
    line27_counterexample,
    standard_ablation_suite,
)
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def test_bench_ablation_suite(benchmark, emit):
    outcomes = benchmark.pedantic(
        standard_ablation_suite, args=(9, 3, range(6)), rounds=1, iterations=1
    )
    by_name = {o.variant: o for o in outcomes}
    paper = by_name["paper (window=n, prune, PT-min)"]
    # The paper's configuration is uniformly clean in the outcome
    # columns (it runs non-hooked now — lemma_violations reads None,
    # "not instrumented"; the property-test suites drive the hooked
    # paper config separately).
    assert paper.invariant_violations is None
    assert paper.agreement_violations == 0
    assert paper.termination_failures == 0
    # Disabling line 25 prevents decisions (garbage nodes keep the strong-
    # connectivity test failing).
    assert by_name["no pruning"].termination_failures > 0
    # An oversized window retains stale certificates: lemma checkers fire.
    assert by_name["window=2n"].invariant_violations > 0
    emit(
        format_table(
            AblationOutcome.HEADERS,
            [o.as_row() for o in outcomes],
            title="ABLATION — Algorithm 1 design knobs across 6 seeded "
            "Psrcs(3) runs (n=9): only the paper's configuration is clean",
        )
    )


def run_counterexample(cls):
    adversary, values, k, n = line27_counterexample()
    procs = [cls(p, n, values[p]) for p in range(n)]
    run = RoundSimulator(
        procs, adversary, SimulationConfig(max_rounds=30)
    ).run()
    return run, k


def test_bench_ablation_line27_counterexample(benchmark, emit):
    run_paper, k = run_counterexample(SkeletonAgreementProcess)
    run_ablate = benchmark.pedantic(
        run_counterexample, args=(MinOverAllProcess,), rounds=1, iterations=1
    )
    paper_vals = sorted(run_paper.decision_values())
    ablate_vals = sorted(run_ablate[0].decision_values())
    assert len(paper_vals) <= k
    assert len(ablate_vals) > k  # Lemma 14 voided: k-agreement broken
    emit(
        format_table(
            ["variant", "decisions", "distinct", "k", "k_agreement"],
            [
                ["paper line 27 (min over PT_p)", paper_vals,
                 len(paper_vals), k, len(paper_vals) <= k],
                ["ablated (min over all received)", ablate_vals,
                 len(ablate_vals), k, len(ablate_vals) <= k],
            ],
            title="ABLATION — line-27 counterexample: one transient edge in "
            "the decision round splits a root component when the min is "
            "not restricted to PT_p (Lemma 14)",
        )
    )
