"""SCC-KERNEL: substrate benchmark — Tarjan vs Kosaraju vs boolean-matrix
closure on random digraphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import gnp_random, to_adjacency
from repro.graphs.matrices import scc_labels
from repro.graphs.scc import kosaraju_scc, tarjan_scc


def graphs_of(n, count=3, p=None):
    p = p if p is not None else 4.0 / n
    return [
        gnp_random(n, p, np.random.default_rng(seed)) for seed in range(count)
    ]


@pytest.mark.parametrize("n", [16, 64, 256])
def test_bench_tarjan(benchmark, n):
    gs = graphs_of(n)
    result = benchmark(lambda: [tarjan_scc(g) for g in gs])
    assert all(r for r in result)


@pytest.mark.parametrize("n", [16, 64, 256])
def test_bench_kosaraju(benchmark, n):
    gs = graphs_of(n)
    result = benchmark(lambda: [kosaraju_scc(g) for g in gs])
    assert all(r for r in result)


@pytest.mark.parametrize("n", [16, 64, 256])
def test_bench_matrix_closure(benchmark, n):
    mats = [to_adjacency(g, n) for g in graphs_of(n)]
    result = benchmark(lambda: [scc_labels(m) for m in mats])
    assert all(len(r) == n for r in result)


def _kernels_agree() -> bool:
    for n in (16, 64):
        for g in graphs_of(n, count=2):
            tarjan = {frozenset(c) for c in tarjan_scc(g)}
            kosaraju = {frozenset(c) for c in kosaraju_scc(g)}
            labels = scc_labels(to_adjacency(g, n))
            matrix = {}
            for node in range(n):
                matrix.setdefault(labels[node], set()).add(node)
            matrix_comps = {frozenset(c) for c in matrix.values()}
            assert tarjan == kosaraju == matrix_comps
    return True


def test_bench_kernels_agree(benchmark):
    assert benchmark.pedantic(_kernels_agree, rounds=1, iterations=1)
