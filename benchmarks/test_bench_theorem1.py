"""THM1: at most k root components in any Psrcs(k) run — swept over n, k,
group counts and seeds."""

from __future__ import annotations

import numpy as np

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.reporting import format_table
from repro.graphs.condensation import count_root_components
from repro.graphs.generators import gnp_random
from repro.predicates.psrcs import Psrcs


def sweep_rows():
    rows = []
    for n in (6, 12, 24, 48):
        for m in (1, 2, 4, 8):
            if m > n:
                continue
            for seed in (0, 1, 2):
                adv = GroupedSourceAdversary(
                    n, num_groups=m, seed=seed, noise=0.2
                )
                stable = adv.declared_stable_graph()
                roots = count_root_components(stable)
                holds = Psrcs(m).check_skeleton(stable).holds
                rows.append([n, m, seed, roots, holds, roots <= m])
    return rows


def test_bench_theorem1_designed_runs(benchmark, emit):
    rows = benchmark.pedantic(sweep_rows, rounds=1, iterations=1)
    assert all(row[4] for row in rows), "Psrcs(m) must hold by construction"
    assert all(row[5] for row in rows), "Theorem 1 bound violated"
    # The designed runs are tight: bound met with equality.
    assert all(row[3] == row[1] for row in rows)
    emit(
        format_table(
            ["n", "k=m", "seed", "root_components", "Psrcs(k)", "roots<=k"],
            rows,
            title="THM1 — root components vs k on designed Psrcs(k) runs "
            "(paper: <= k; designs are tight)",
        )
    )


def random_skeleton_rows():
    rows = []
    for n in (6, 8, 10):
        for seed in range(4):
            g = gnp_random(n, 0.15, np.random.default_rng(seed), self_loops=True)
            k_star = Psrcs(1).tightest_k(g)
            roots = count_root_components(g)
            rows.append([n, seed, k_star, roots, roots <= k_star])
    return rows


def test_bench_theorem1_random_skeletons(benchmark, emit):
    """Random stable skeletons: Theorem 1 as roots <= tightest-k = α(H)."""
    rows = benchmark.pedantic(random_skeleton_rows, rounds=1, iterations=1)
    assert all(row[4] for row in rows)
    emit(
        format_table(
            ["n", "seed", "tightest_k (α)", "root_components", "roots<=k"],
            rows,
            title="THM1 — random skeletons: roots <= α(conflict graph)",
        )
    )
