"""FASTPATH: the vectorized and mega-batched backends vs the reference.

Times the three execution backends over the same campaign ensemble
workloads the TERMINATION and LATENCY-DIST experiments run — per-scenario
results are asserted byte-identical (canonical JSON lines) across all
three before any speedup is reported, so the numbers always compare
*equivalent* work.  Wall-clocks land in ``benchmarks/BENCH_FASTPATH.json``
(machine-readable trajectory: per-``n`` groups and medians, for both the
reference and the vectorized baseline) and the per-group breakdown in
``results.txt``.

Each group is one seed ensemble (24 seeds — campaign-scale, which is
what the mega-batched backend exists for: a grid's same-``n`` scenarios
arrive contiguous and stack into one ``(S, n, ...)`` tensor program).
"""

from __future__ import annotations

import statistics
import time

from repro.analysis.reporting import format_table
from repro.engine.executor import execute_scenarios
from repro.engine.scenarios import ScenarioSpec, termination_grid
from repro.engine.store import canonical_line

# Conservative floors vs the measured ~2.1-2.8x (batched over vectorized)
# and ~6x+ (fast paths over reference) so a loaded CI box cannot flake
# the suite; BENCH_FASTPATH.json records the real ratios.
MIN_SPEEDUP = 2.5  # vectorized (and batched) over reference
MIN_BATCH_GAIN = 1.2  # batched over vectorized, median across groups

SEEDS = 24

HEADERS = [
    "group",
    "scenarios",
    "ref_ms",
    "vect_ms",
    "batch_ms",
    "vs_ref",
    "vs_vect",
]


def _time_backends(specs):
    """(reference_s, vectorized_s, batched_s) for one scenario list,
    three-way equivalence asserted first."""
    reference = execute_scenarios(specs, backend="reference")
    vectorized = execute_scenarios(specs, backend="vectorized")
    batched = execute_scenarios(specs, backend="batched")
    lines = [canonical_line(r) for r in reference]
    assert lines == [canonical_line(r) for r in vectorized], (
        "backends disagree — speedup numbers would be meaningless"
    )
    assert lines == [canonical_line(r) for r in batched], (
        "backends disagree — speedup numbers would be meaningless"
    )
    t0 = time.perf_counter()
    execute_scenarios(specs, backend="reference")
    t1 = time.perf_counter()
    execute_scenarios(specs, backend="vectorized")
    t2 = time.perf_counter()
    execute_scenarios(specs, backend="batched")
    t3 = time.perf_counter()
    return t1 - t0, t2 - t1, t3 - t2


def _compare_groups(groups):
    rows, groups_out = [], []
    total_ref = total_vect = total_batch = 0.0
    total_n = 0
    for label, specs in groups:
        ref_s, vect_s, batch_s = _time_backends(specs)
        rows.append(
            [
                label,
                len(specs),
                round(ref_s * 1e3, 1),
                round(vect_s * 1e3, 1),
                round(batch_s * 1e3, 1),
                round(ref_s / batch_s, 1),
                round(vect_s / batch_s, 2),
            ]
        )
        groups_out.append(
            {
                "group": label,
                "scenarios": len(specs),
                "reference_s": round(ref_s, 4),
                "vectorized_s": round(vect_s, 4),
                "batched_s": round(batch_s, 4),
                "speedup_vs_reference": round(ref_s / batch_s, 2),
                "speedup_vs_vectorized": round(vect_s / batch_s, 2),
            }
        )
        total_ref += ref_s
        total_vect += vect_s
        total_batch += batch_s
        total_n += len(specs)
    rows.append(
        [
            "total",
            total_n,
            round(total_ref * 1e3, 1),
            round(total_vect * 1e3, 1),
            round(total_batch * 1e3, 1),
            round(total_ref / total_batch, 1),
            round(total_vect / total_batch, 2),
        ]
    )
    totals = (total_ref, total_vect, total_batch, total_n)
    return rows, groups_out, totals


def _assert_and_record(workload, grid_desc, groups, record_fastpath, benchmark):
    rows, group_entries, totals = benchmark.pedantic(
        lambda: _compare_groups(groups), rounds=1, iterations=1
    )
    total_ref, total_vect, total_batch, total_n = totals
    assert total_ref / total_vect >= MIN_SPEEDUP
    assert total_ref / total_batch >= MIN_SPEEDUP
    median_gain = statistics.median(
        g["speedup_vs_vectorized"] for g in group_entries
    )
    assert median_gain >= MIN_BATCH_GAIN
    record_fastpath(
        workload,
        total_ref,
        total_vect,
        total_n,
        batched_s=total_batch,
        extra={"grid": grid_desc, "groups": group_entries},
    )
    return rows


def test_bench_fastpath_termination(benchmark, emit, record_fastpath):
    groups = [
        (f"n={n}", termination_grid(ns=[n], seeds=range(SEEDS), noise=0.15))
        for n in (4, 6, 9, 12, 16)
    ]
    rows = _assert_and_record(
        "TERMINATION",
        f"termination_grid(ns=[4,6,9,12,16], seeds=0..{SEEDS - 1}, "
        "noise=0.15)",
        groups,
        record_fastpath,
        benchmark,
    )
    emit(
        format_table(
            HEADERS,
            rows,
            title="FASTPATH-TERM — mega-batched vs vectorized vs reference "
            "backend on the TERMINATION ensemble (identical metrics "
            "asserted first)",
        )
    )


def test_bench_fastpath_latency_dist(benchmark, emit, record_fastpath):
    scaling = [
        (
            f"n={n}",
            [
                ScenarioSpec(n=n, k=2, num_groups=2, seed=s, noise=0.2)
                for s in range(SEEDS)
            ],
        )
        for n in (6, 9, 12, 16)
    ]
    noise_sens = [
        (
            f"noise={noise}",
            [
                ScenarioSpec(n=9, k=3, num_groups=3, seed=s, noise=noise)
                for s in range(SEEDS)
            ],
        )
        for noise in (0.0, 0.1, 0.3, 0.5)
    ]
    rows = _assert_and_record(
        "LATENCY-DIST",
        f"latency scaling n=6..16 + noise sensitivity n=9, {SEEDS} seeds",
        scaling + noise_sens,
        record_fastpath,
        benchmark,
    )
    emit(
        format_table(
            HEADERS,
            rows,
            title="FASTPATH-LAT — mega-batched vs vectorized vs reference "
            "backend on the LATENCY-DIST ensembles (identical metrics "
            "asserted first)",
        )
    )
