"""FASTPATH: the vectorized and mega-batched backends vs the reference.

Times the three execution backends over the same campaign ensemble
workloads the TERMINATION and LATENCY-DIST experiments run — per-scenario
results are asserted byte-identical (canonical JSON lines) across all
three before any speedup is reported, so the numbers always compare
*equivalent* work.  Wall-clocks land in ``benchmarks/BENCH_FASTPATH.json``
(machine-readable trajectory: per-``n`` groups and medians, for both the
reference and the vectorized baseline) and the per-group breakdown in
``results.txt``.

Each group is one seed ensemble (24 seeds — campaign-scale, which is
what the mega-batched backend exists for: the batch scheduler packs a
grid's same-``n`` scenarios into one ``(S, n, ...)`` tensor program).
The HETERO-LAT workload additionally measures the scheduler's lane
**compaction** gain: heterogeneous-latency ensembles (early-deciding
lanes mixed with full-budget stragglers) timed with compaction on vs the
mask-only kernel behavior the PR-4 backend had.
"""

from __future__ import annotations

import statistics
import time

from repro.analysis.reporting import format_table
from repro.engine.executor import execute_scenarios
from repro.engine.scenarios import ScenarioSpec, termination_grid
from repro.engine.store import canonical_line

# Conservative floors vs the measured ~2.1-2.8x (batched over vectorized)
# and ~6x+ (fast paths over reference) so a loaded CI box cannot flake
# the suite; BENCH_FASTPATH.json records the real ratios.
MIN_SPEEDUP = 2.5  # vectorized (and batched) over reference
MIN_BATCH_GAIN = 1.2  # batched over vectorized, median across groups
# Lane compaction over mask-only batching (the PR-4 kernel behavior) on
# the heterogeneous-latency ensemble; measured ~1.9-2.7x.
MIN_COMPACTION_GAIN = 1.3
# Cross-n packing over the per-n grouping (the PR-5 scheduler behavior)
# on sparse mixed-width ensembles; measured ~1.5-2.1x.
MIN_PACKING_GAIN = 1.3
# The schema-3 BENCH_FASTPATH.json floor for median_speedup_batched: the
# regression guard below fails a run that lands under FLOOR * SLACK.
# The slack absorbs shared-box noise (per-group timings on a loaded CI
# host jitter by tens of percent); a real regression — losing the
# mega-batch, the scheduler, or compaction — lands at 2-7x, far below.
SCHEMA3_SPEEDUP_FLOOR = 14.44
FLOOR_SLACK = 0.7

SEEDS = 24

HEADERS = [
    "group",
    "scenarios",
    "ref_ms",
    "vect_ms",
    "batch_ms",
    "vs_ref",
    "vs_vect",
]


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock: per-group timings feed the
    recorded per-group ratios, and a single 6-15ms sample on a noisy box
    can swing one group by 20% — the minimum is the stable estimator."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_backends(specs):
    """(reference_s, vectorized_s, batched_s) for one scenario list,
    three-way equivalence asserted first."""
    reference = execute_scenarios(specs, backend="reference")
    vectorized = execute_scenarios(specs, backend="vectorized")
    batched = execute_scenarios(specs, backend="batched")
    lines = [canonical_line(r) for r in reference]
    assert lines == [canonical_line(r) for r in vectorized], (
        "backends disagree — speedup numbers would be meaningless"
    )
    assert lines == [canonical_line(r) for r in batched], (
        "backends disagree — speedup numbers would be meaningless"
    )
    return (
        _best_of(lambda: execute_scenarios(specs, backend="reference")),
        _best_of(lambda: execute_scenarios(specs, backend="vectorized")),
        _best_of(lambda: execute_scenarios(specs, backend="batched")),
    )


def _compare_groups(groups):
    rows, groups_out = [], []
    total_ref = total_vect = total_batch = 0.0
    total_n = 0
    for label, specs in groups:
        ref_s, vect_s, batch_s = _time_backends(specs)
        rows.append(
            [
                label,
                len(specs),
                round(ref_s * 1e3, 1),
                round(vect_s * 1e3, 1),
                round(batch_s * 1e3, 1),
                round(ref_s / batch_s, 1),
                round(vect_s / batch_s, 2),
            ]
        )
        groups_out.append(
            {
                "group": label,
                "scenarios": len(specs),
                "reference_s": round(ref_s, 4),
                "vectorized_s": round(vect_s, 4),
                "batched_s": round(batch_s, 4),
                "speedup_vs_reference": round(ref_s / batch_s, 2),
                "speedup_vs_vectorized": round(vect_s / batch_s, 2),
            }
        )
        total_ref += ref_s
        total_vect += vect_s
        total_batch += batch_s
        total_n += len(specs)
    rows.append(
        [
            "total",
            total_n,
            round(total_ref * 1e3, 1),
            round(total_vect * 1e3, 1),
            round(total_batch * 1e3, 1),
            round(total_ref / total_batch, 1),
            round(total_vect / total_batch, 2),
        ]
    )
    totals = (total_ref, total_vect, total_batch, total_n)
    return rows, groups_out, totals


def _assert_and_record(workload, grid_desc, groups, record_fastpath, benchmark):
    rows, group_entries, totals = benchmark.pedantic(
        lambda: _compare_groups(groups), rounds=1, iterations=1
    )
    total_ref, total_vect, total_batch, total_n = totals
    assert total_ref / total_vect >= MIN_SPEEDUP
    assert total_ref / total_batch >= MIN_SPEEDUP
    median_gain = statistics.median(
        g["speedup_vs_vectorized"] for g in group_entries
    )
    assert median_gain >= MIN_BATCH_GAIN
    record_fastpath(
        workload,
        total_ref,
        total_vect,
        total_n,
        batched_s=total_batch,
        extra={"grid": grid_desc, "groups": group_entries},
    )
    return rows


def test_bench_fastpath_termination(benchmark, emit, record_fastpath):
    groups = [
        (f"n={n}", termination_grid(ns=[n], seeds=range(SEEDS), noise=0.15))
        for n in (4, 6, 9, 12, 16)
    ]
    rows = _assert_and_record(
        "TERMINATION",
        f"termination_grid(ns=[4,6,9,12,16], seeds=0..{SEEDS - 1}, "
        "noise=0.15)",
        groups,
        record_fastpath,
        benchmark,
    )
    emit(
        format_table(
            HEADERS,
            rows,
            title="FASTPATH-TERM — mega-batched vs vectorized vs reference "
            "backend on the TERMINATION ensemble (identical metrics "
            "asserted first)",
        )
    )


def _hetero_latency_specs(n: int, seeds: int) -> list[ScenarioSpec]:
    """One heterogeneous-latency ensemble: lanes of one same-``n`` batch
    retiring at wildly different rounds.  Two of six lanes carry the
    ablation knobs that stall Algorithm 1 — ``prune_unreachable=False``
    runs to the full ``6n + 20`` budget, a shrunk purge window retires
    earliest — while the rest sweep noise and decide at ``~n + 4``.
    Mask-only batching pays full kernel width until the last straggler
    finishes; lane compaction pays per-round for the live lanes only.
    """
    specs = []
    for s in range(seeds):
        if s % 6 == 5:
            specs.append(
                ScenarioSpec(
                    n=n, k=2, num_groups=2, seed=s, noise=0.35,
                    options=(("prune_unreachable", False),),
                )
            )
        elif s % 6 == 4:
            specs.append(
                ScenarioSpec(
                    n=n, k=2, num_groups=2, seed=s, noise=0.35,
                    options=(("purge_window", max(1, n // 2)),),
                )
            )
        else:
            specs.append(
                ScenarioSpec(
                    n=n, k=2, num_groups=2, seed=s,
                    noise=(0.0, 0.15, 0.3, 0.45)[s % 4],
                )
            )
    return specs


HETERO_HEADERS = [
    "group",
    "scenarios",
    "ref_ms",
    "vect_ms",
    "masked_ms",
    "batch_ms",
    "vs_ref",
    "compaction",
]


def test_bench_fastpath_hetero_latency(benchmark, emit, record_fastpath):
    """HETERO-LAT: the batch scheduler's lane-compaction gain.

    ``compact=False`` reproduces the PR-4 mega-batched backend exactly
    (retired lanes masked, full width to the last straggler), so the
    masked-vs-compacted ratio *is* the compaction gain — measured on
    byte-identical work, asserted equivalent first.
    """
    groups = [
        (f"n={n}", _hetero_latency_specs(n, SEEDS)) for n in (9, 12, 16)
    ]

    def _run():
        rows, entries = [], []
        total_ref = total_vect = total_masked = total_batch = total_n = 0
        for label, specs in groups:
            reference = execute_scenarios(specs, backend="reference")
            vectorized = execute_scenarios(specs, backend="vectorized")
            masked = execute_scenarios(
                specs, backend="batched", compact=False
            )
            compacted = execute_scenarios(specs, backend="batched")
            lines = [canonical_line(r) for r in reference]
            assert lines == [canonical_line(r) for r in vectorized]
            assert lines == [canonical_line(r) for r in masked]
            assert lines == [canonical_line(r) for r in compacted]
            ref_s = _best_of(
                lambda: execute_scenarios(specs, backend="reference")
            )
            vect_s = _best_of(
                lambda: execute_scenarios(specs, backend="vectorized")
            )
            masked_s = _best_of(
                lambda: execute_scenarios(
                    specs, backend="batched", compact=False
                )
            )
            batch_s = _best_of(
                lambda: execute_scenarios(specs, backend="batched")
            )
            rows.append(
                [
                    label,
                    len(specs),
                    round(ref_s * 1e3, 1),
                    round(vect_s * 1e3, 1),
                    round(masked_s * 1e3, 1),
                    round(batch_s * 1e3, 1),
                    round(ref_s / batch_s, 1),
                    round(masked_s / batch_s, 2),
                ]
            )
            entries.append(
                {
                    "group": label,
                    "scenarios": len(specs),
                    "reference_s": round(ref_s, 4),
                    "vectorized_s": round(vect_s, 4),
                    "batched_masked_s": round(masked_s, 4),
                    "batched_s": round(batch_s, 4),
                    "speedup_vs_reference": round(ref_s / batch_s, 2),
                    "speedup_vs_vectorized": round(vect_s / batch_s, 2),
                    "compaction_gain": round(masked_s / batch_s, 2),
                }
            )
            total_ref += ref_s
            total_vect += vect_s
            total_masked += masked_s
            total_batch += batch_s
            total_n += len(specs)
        rows.append(
            [
                "total",
                total_n,
                round(total_ref * 1e3, 1),
                round(total_vect * 1e3, 1),
                round(total_masked * 1e3, 1),
                round(total_batch * 1e3, 1),
                round(total_ref / total_batch, 1),
                round(total_masked / total_batch, 2),
            ]
        )
        totals = (total_ref, total_vect, total_masked, total_batch, total_n)
        return rows, entries, totals

    rows, entries, totals = benchmark.pedantic(_run, rounds=1, iterations=1)
    total_ref, total_vect, total_masked, total_batch, total_n = totals
    median_gain = statistics.median(g["compaction_gain"] for g in entries)
    assert median_gain >= MIN_COMPACTION_GAIN
    assert total_ref / total_batch >= MIN_SPEEDUP
    record_fastpath(
        "HETERO-LAT",
        total_ref,
        total_vect,
        total_n,
        batched_s=total_batch,
        extra={
            "grid": f"heterogeneous-latency mix n=9,12,16, {SEEDS} seeds "
            "(4/6 noise-sweep + 1/6 shrunk-window + 1/6 no-pruning "
            "full-budget stragglers)",
            "batched_masked_s": round(total_masked, 4),
            "compaction_gain": round(total_masked / total_batch, 2),
            "compaction_baseline": "batched with compact=False "
            "(mask-only, the PR-4 kernel behavior)",
            "groups": entries,
        },
    )
    emit(
        format_table(
            HETERO_HEADERS,
            rows,
            title="FASTPATH-HETERO — lane compaction vs mask-only "
            "mega-batching on heterogeneous-latency ensembles "
            "(identical metrics asserted first)",
        )
    )


def _interleaved_best(
    fns,
    pairs,
    min_repeats: int = 7,
    max_repeats: int = 60,
    converge: float = 0.015,
) -> tuple[list[float], bool]:
    """Best-of wall-clock per candidate with *interleaved* repeats.

    Interleaving means slow drift (thermal throttling, background load)
    hits every candidate in the same round, and the in-round order
    rotates each round so no candidate systematically rides a
    periodic-load pattern; the per-candidate minimum is the floor
    estimator.  Each ``(i, j)`` in ``pairs`` names two candidates
    running the *same* workload (an A/A pair): rounds continue past
    ``min_repeats`` until every pair's minima agree within ``converge``,
    so ratios between floors measure code, not scheduler luck — per-run
    noise on a loaded box runs several percent, while the floors of
    identical code converge given enough samples (minima only ever
    improve).  Returns ``(floors, converged)``; a ``False`` flag means
    the box was too noisy to resolve ``converge`` within
    ``max_repeats`` rounds."""
    best = [float("inf")] * len(fns)
    for fn in fns:  # warm caches/allocators outside the timed rounds
        fn()
    converged = False
    for r in range(max_repeats):
        for i in range(len(fns)):
            j = (i + r) % len(fns)
            t0 = time.perf_counter()
            fns[j]()
            best[j] = min(best[j], time.perf_counter() - t0)
        converged = r + 1 >= min_repeats and all(
            max(best[i], best[j]) / min(best[i], best[j]) - 1 < converge
            for i, j in pairs
        )
        if converged:
            break
    return best, converged


def test_bench_telemetry_overhead(benchmark, emit, record_telemetry):
    """TELEMETRY: the recorder must be zero-cost when off.

    Times the TERMINATION-style batched ensemble four ways — an A/A pair
    with the recorder off and an A/A pair with a live recorder.  The
    off/off pair ratio is both the measurement noise floor and the
    recorder-off overhead (since "off" *is* the instrumented code with
    the null recorder): enforced < 2%.  Once both pairs converge the
    floors are trustworthy, so the on/off overhead is enforced at a
    generous < 5% (measured ~1%).  A box too noisy for both A/A pairs to
    converge within the round cap cannot resolve either bound — that is
    a measurement outcome, not a regression, and skips.
    """
    import pytest

    from repro.engine.telemetry import Recorder

    specs = termination_grid(ns=[9, 12, 16], seeds=range(48), noise=0.15)

    def _off():
        execute_scenarios(specs, backend="batched")

    def _on():
        execute_scenarios(specs, backend="batched", recorder=Recorder())

    (off_a, off_b, on_a, on_b), converged = benchmark.pedantic(
        lambda: _interleaved_best(
            [_off, _off, _on, _on], pairs=[(0, 1), (2, 3)]
        ),
        rounds=1,
        iterations=1,
    )
    if not converged:
        pytest.skip(
            "A/A timing pairs did not converge within the round cap — "
            "the box is too noisy to resolve the 2% overhead guard"
        )
    off_s = min(off_a, off_b)
    on_s = min(on_a, on_b)
    off_overhead = max(off_a, off_b) / off_s - 1.0
    on_overhead = on_s / off_s - 1.0
    assert off_overhead < 0.02, (
        f"recorder-off A/A ratio {off_overhead:.2%} >= 2% — the "
        "null-recorder path is no longer measurement-stable"
    )
    assert on_overhead < 0.05, (
        f"live-recorder overhead {on_overhead:.2%} >= 5% — recording "
        "got expensive; check for unguarded hot-loop instrumentation"
    )
    record_telemetry(
        {
            "workload": "TERMINATION-style batched ensemble "
            f"(ns=[9,12,16], {len(specs)} scenarios)",
            "recorder_off_s": round(off_s, 4),
            "recorder_on_s": round(on_s, 4),
            "recorder_off_overhead": round(off_overhead, 4),
            "recorder_on_overhead": round(on_overhead, 4),
            "method": "interleaved best-of-N over two A/A pairs "
            "(off/off + on/on), N adaptive until both converge "
            "(7..60 rounds)",
        }
    )
    emit(
        format_table(
            ["variant", "wall_ms", "overhead"],
            [
                ["recorder off", round(off_s * 1e3, 1), "baseline"],
                [
                    "recorder off (A/A twin)",
                    round(max(off_a, off_b) * 1e3, 1),
                    f"{off_overhead:+.1%}",
                ],
                ["recorder on", round(on_s * 1e3, 1), f"{on_overhead:+.1%}"],
            ],
            title="TELEMETRY — recorder overhead on the batched ensemble "
            "(off/off pair bounds noise; off <2%, on <5% enforced)",
        )
    )


def test_bench_contracts_overhead(benchmark, emit, record_contracts):
    """CONTRACTS: the runtime contract layer must be zero-cost when off.

    Same harness as the telemetry guard: an off/off A/A pair bounds both
    the noise floor and the contracts-off overhead (the "off" path *is*
    the instrumented code behind ``if contracts:`` guards and the
    ``@contract`` decorator's one falsy lookup) — enforced < 2%.  The
    contracts-on floor is informative only: armed contracts deliberately
    re-derive work (re-fetched schedule blocks, re-planned batches,
    singleton lane re-runs) on a sampled subset, so its cost is a design
    dial, not a regression signal.
    """
    import pytest

    from repro.engine.contracts import contracts_enabled

    specs = termination_grid(ns=[9, 12, 16], seeds=range(48), noise=0.15)

    def _off():
        execute_scenarios(specs, backend="batched")

    def _on():
        with contracts_enabled():
            execute_scenarios(specs, backend="batched")

    (off_a, off_b, on_s), converged = benchmark.pedantic(
        lambda: _interleaved_best([_off, _off, _on], pairs=[(0, 1)]),
        rounds=1,
        iterations=1,
    )
    if not converged:
        pytest.skip(
            "A/A timing pair did not converge within the round cap — "
            "the box is too noisy to resolve the 2% overhead guard"
        )
    off_s = min(off_a, off_b)
    off_overhead = max(off_a, off_b) / off_s - 1.0
    on_overhead = on_s / off_s - 1.0
    assert off_overhead < 0.02, (
        f"contracts-off A/A ratio {off_overhead:.2%} >= 2% — the "
        "null-contracts path is no longer measurement-stable"
    )
    record_contracts(
        {
            "workload": "TERMINATION-style batched ensemble "
            f"(ns=[9,12,16], {len(specs)} scenarios)",
            "contracts_off_s": round(off_s, 4),
            "contracts_on_s": round(on_s, 4),
            "contracts_off_overhead": round(off_overhead, 4),
            "contracts_on_overhead": round(on_overhead, 4),
            "method": "interleaved best-of-N with an off/off A/A pair, "
            "N adaptive until the pair converges (7..60 rounds); "
            "contracts-on is informative (sampled re-derivation "
            "is paid work by design)",
        }
    )
    emit(
        format_table(
            ["variant", "wall_ms", "overhead"],
            [
                ["contracts off", round(off_s * 1e3, 1), "baseline"],
                [
                    "contracts off (A/A twin)",
                    round(max(off_a, off_b) * 1e3, 1),
                    f"{off_overhead:+.1%}",
                ],
                [
                    "contracts on (informative)",
                    round(on_s * 1e3, 1),
                    f"{on_overhead:+.1%}",
                ],
            ],
            title="CONTRACTS — runtime contract layer overhead on the "
            "batched ensemble (off/off pair bounds noise; off <2% "
            "enforced, on informative)",
        )
    )


def _mixed_width_specs() -> list[tuple[str, list[ScenarioSpec]]]:
    """Sparse mixed-``n`` ensembles sharing one round bucket (n=4..7 all
    resolve inside the 64-round budget): the PR-5 scheduler runs one
    tensor program per ``n`` — four programs of a handful of lanes each,
    where per-program fixed cost and the per-round Python loop dominate
    — while ``pack_widths`` fuses them into one padded program.  This is
    the workload cross-``n`` packing exists for; dense per-``n``
    ensembles (24+ seeds each) and wide-``n`` spreads amortize fine
    unpacked and are *not* claimed here (padding can even lose — see the
    README's when-it-wins notes)."""
    term = [
        ScenarioSpec(n=n, k=2, num_groups=2, seed=s, noise=0.15)
        for n in (4, 5, 6, 7)
        for s in range(4)
    ]
    hetero = [
        ScenarioSpec(n=n, k=2, num_groups=2, seed=s, noise=noise,
                     options=options)
        for n in (4, 5, 6, 7)
        for s in range(2)
        for noise, options in (
            (0.3, ()),
            (0.1, (("purge_window", 3),)),
            (0.15, (("prune_unreachable", False),)),
        )
    ]
    return [("term ns=4..7", term), ("hetero ns=4..7", hetero)]


PACKED_HEADERS = [
    "group",
    "scenarios",
    "pr5_ms",
    "packed_ms",
    "packing",
    "steal",
]


def test_bench_fastpath_cross_width_packing(benchmark, emit, record_fastpath):
    """PACKED-MIX: cross-n packing + work stealing vs the PR-5 scheduler.

    Each group is timed through the identical executor twice — per-``n``
    grouping (the PR-5 plan) vs ``pack_widths`` — with journal bytes
    asserted identical first.  The steal column is the pooled leg on the
    packed plan (jobs=2, steal on vs off): on a multi-core host stealing
    shortens skewed tails; on a single-core host it is granularity
    insurance and the ratio sits near 1.0 — recorded either way, never
    floor-gated (the packing gain carries the speedup criterion).
    """
    groups = _mixed_width_specs()

    def _run():
        rows, entries = [], []
        total_ref = total_vect = total_pr5 = total_packed = total_n = 0
        for label, specs in groups:
            pr5 = execute_scenarios(specs, backend="batched")
            packed = execute_scenarios(
                specs, backend="batched", pack_widths=True
            )
            lines = [canonical_line(r) for r in pr5]
            assert lines == [canonical_line(r) for r in packed]
            assert lines == [
                canonical_line(r)
                for r in execute_scenarios(specs, backend="reference")
            ]
            ref_s = _best_of(
                lambda: execute_scenarios(specs, backend="reference")
            )
            vect_s = _best_of(
                lambda: execute_scenarios(specs, backend="vectorized")
            )
            pr5_s = _best_of(
                lambda: execute_scenarios(specs, backend="batched"),
                repeats=5,
            )
            packed_s = _best_of(
                lambda: execute_scenarios(
                    specs, backend="batched", pack_widths=True
                ),
                repeats=5,
            )
            rows.append(
                [
                    label,
                    len(specs),
                    round(pr5_s * 1e3, 1),
                    round(packed_s * 1e3, 1),
                    round(pr5_s / packed_s, 2),
                    "-",
                ]
            )
            entries.append(
                {
                    "group": label,
                    "scenarios": len(specs),
                    "reference_s": round(ref_s, 4),
                    "vectorized_s": round(vect_s, 4),
                    "batched_unpacked_s": round(pr5_s, 4),
                    "batched_s": round(packed_s, 4),
                    "speedup_vs_reference": round(ref_s / packed_s, 2),
                    "packing_gain": round(pr5_s / packed_s, 2),
                }
            )
            total_ref += ref_s
            total_vect += vect_s
            total_pr5 += pr5_s
            total_packed += packed_s
            total_n += len(specs)
        # The pooled steal leg: one skewed packed plan across two
        # workers, steal off vs on (identical journal bytes asserted by
        # the differential suite; here only the wall-clocks differ).
        steal_specs = [
            spec
            for _, specs in groups
            for spec in specs
        ] + [
            ScenarioSpec(n=7, k=2, num_groups=2, seed=s, noise=0.35)
            for s in range(8)
        ]
        pool_kw = dict(backend="batched", pack_widths=True, jobs=2)
        nosteal_s = _best_of(
            lambda: execute_scenarios(steal_specs, **pool_kw), repeats=3
        )
        steal_s = _best_of(
            lambda: execute_scenarios(steal_specs, steal=True, **pool_kw),
            repeats=3,
        )
        entries.append(
            {
                "group": "pool jobs=2",
                "scenarios": len(steal_specs),
                "pool_nosteal_s": round(nosteal_s, 4),
                "pool_steal_s": round(steal_s, 4),
                "steal_gain": round(nosteal_s / steal_s, 2),
            }
        )
        rows.append(
            [
                "pool jobs=2",
                len(steal_specs),
                round(nosteal_s * 1e3, 1),
                round(steal_s * 1e3, 1),
                "-",
                round(nosteal_s / steal_s, 2),
            ]
        )
        rows.append(
            [
                "total",
                total_n,
                round(total_pr5 * 1e3, 1),
                round(total_packed * 1e3, 1),
                round(total_pr5 / total_packed, 2),
                "-",
            ]
        )
        totals = (total_ref, total_vect, total_pr5, total_packed, total_n)
        return rows, entries, totals

    rows, entries, totals = benchmark.pedantic(_run, rounds=1, iterations=1)
    total_ref, total_vect, total_pr5, total_packed, total_n = totals
    median_packing = statistics.median(
        g["packing_gain"] for g in entries if "packing_gain" in g
    )
    assert median_packing >= MIN_PACKING_GAIN, (
        f"cross-n packing gain {median_packing} < {MIN_PACKING_GAIN} on "
        "the sparse mixed-width ensembles it exists for"
    )
    record_fastpath(
        "PACKED-MIX",
        total_ref,
        total_vect,
        total_n,
        batched_s=total_packed,
        extra={
            "grid": "sparse mixed-width ensembles ns=4..7 (termination-"
            "style 4 seeds/n + hetero-latency 6 variants/n), one "
            "64-round bucket",
            "batched_unpacked_s": round(total_pr5, 4),
            "packing_gain": round(total_pr5 / total_packed, 2),
            "packing_baseline": "batched with per-n grouping (the PR-5 "
            "scheduler behavior)",
            "steal_baseline": "pool jobs=2 on the packed plan with "
            "steal off (throttled dispatch either way); single-core "
            "hosts show ~1.0",
            "groups": entries,
        },
    )
    emit(
        format_table(
            PACKED_HEADERS,
            rows,
            title="FASTPATH-PACKED — cross-n packing vs per-n grouping "
            "on sparse mixed-width ensembles, plus the pooled "
            "steal leg (identical journal bytes asserted first)",
        )
    )


def test_bench_fastpath_floor_guard():
    """The recorded trajectory must not regress below the schema-3 floor.

    Reads ``median_speedup_batched`` back from BENCH_FASTPATH.json after
    the workload benches above have upserted their timings (file order
    runs them first) and fails if it fell below the schema-3 recorded
    floor with shared-box slack — the backstop that keeps a silent
    kernel/scheduler regression from shipping inside an otherwise-green
    bench run.
    """
    import json
    import pathlib

    path = pathlib.Path(__file__).parent / "BENCH_FASTPATH.json"
    data = json.loads(path.read_text())
    assert data["schema"] >= 3
    recorded = data["median_speedup_batched"]
    assert recorded >= SCHEMA3_SPEEDUP_FLOOR * FLOOR_SLACK, (
        f"median_speedup_batched {recorded} fell below the schema-3 "
        f"floor {SCHEMA3_SPEEDUP_FLOOR} (x{FLOOR_SLACK} noise slack) — "
        "the mega-batched backend has regressed"
    )


def test_bench_fastpath_latency_dist(benchmark, emit, record_fastpath):
    scaling = [
        (
            f"n={n}",
            [
                ScenarioSpec(n=n, k=2, num_groups=2, seed=s, noise=0.2)
                for s in range(SEEDS)
            ],
        )
        for n in (6, 9, 12, 16)
    ]
    noise_sens = [
        (
            f"noise={noise}",
            [
                ScenarioSpec(n=9, k=3, num_groups=3, seed=s, noise=noise)
                for s in range(SEEDS)
            ],
        )
        for noise in (0.0, 0.1, 0.3, 0.5)
    ]
    rows = _assert_and_record(
        "LATENCY-DIST",
        f"latency scaling n=6..16 + noise sensitivity n=9, {SEEDS} seeds",
        scaling + noise_sens,
        record_fastpath,
        benchmark,
    )
    emit(
        format_table(
            HEADERS,
            rows,
            title="FASTPATH-LAT — mega-batched vs vectorized vs reference "
            "backend on the LATENCY-DIST ensembles (identical metrics "
            "asserted first)",
        )
    )
