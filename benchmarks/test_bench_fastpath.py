"""FASTPATH: the vectorized and mega-batched backends vs the reference.

Times the three execution backends over the same campaign ensemble
workloads the TERMINATION and LATENCY-DIST experiments run — per-scenario
results are asserted byte-identical (canonical JSON lines) across all
three before any speedup is reported, so the numbers always compare
*equivalent* work.  Wall-clocks land in ``benchmarks/BENCH_FASTPATH.json``
(machine-readable trajectory: per-``n`` groups and medians, for both the
reference and the vectorized baseline) and the per-group breakdown in
``results.txt``.

Each group is one seed ensemble (24 seeds — campaign-scale, which is
what the mega-batched backend exists for: the batch scheduler packs a
grid's same-``n`` scenarios into one ``(S, n, ...)`` tensor program).
The HETERO-LAT workload additionally measures the scheduler's lane
**compaction** gain: heterogeneous-latency ensembles (early-deciding
lanes mixed with full-budget stragglers) timed with compaction on vs the
mask-only kernel behavior the PR-4 backend had.
"""

from __future__ import annotations

import statistics
import time

from repro.analysis.reporting import format_table
from repro.engine.executor import execute_scenarios
from repro.engine.scenarios import ScenarioSpec, termination_grid
from repro.engine.store import canonical_line

# Conservative floors vs the measured ~2.1-2.8x (batched over vectorized)
# and ~6x+ (fast paths over reference) so a loaded CI box cannot flake
# the suite; BENCH_FASTPATH.json records the real ratios.
MIN_SPEEDUP = 2.5  # vectorized (and batched) over reference
MIN_BATCH_GAIN = 1.2  # batched over vectorized, median across groups
# Lane compaction over mask-only batching (the PR-4 kernel behavior) on
# the heterogeneous-latency ensemble; measured ~1.9-2.7x.
MIN_COMPACTION_GAIN = 1.3

SEEDS = 24

HEADERS = [
    "group",
    "scenarios",
    "ref_ms",
    "vect_ms",
    "batch_ms",
    "vs_ref",
    "vs_vect",
]


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock: per-group timings feed the
    recorded per-group ratios, and a single 6-15ms sample on a noisy box
    can swing one group by 20% — the minimum is the stable estimator."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_backends(specs):
    """(reference_s, vectorized_s, batched_s) for one scenario list,
    three-way equivalence asserted first."""
    reference = execute_scenarios(specs, backend="reference")
    vectorized = execute_scenarios(specs, backend="vectorized")
    batched = execute_scenarios(specs, backend="batched")
    lines = [canonical_line(r) for r in reference]
    assert lines == [canonical_line(r) for r in vectorized], (
        "backends disagree — speedup numbers would be meaningless"
    )
    assert lines == [canonical_line(r) for r in batched], (
        "backends disagree — speedup numbers would be meaningless"
    )
    return (
        _best_of(lambda: execute_scenarios(specs, backend="reference")),
        _best_of(lambda: execute_scenarios(specs, backend="vectorized")),
        _best_of(lambda: execute_scenarios(specs, backend="batched")),
    )


def _compare_groups(groups):
    rows, groups_out = [], []
    total_ref = total_vect = total_batch = 0.0
    total_n = 0
    for label, specs in groups:
        ref_s, vect_s, batch_s = _time_backends(specs)
        rows.append(
            [
                label,
                len(specs),
                round(ref_s * 1e3, 1),
                round(vect_s * 1e3, 1),
                round(batch_s * 1e3, 1),
                round(ref_s / batch_s, 1),
                round(vect_s / batch_s, 2),
            ]
        )
        groups_out.append(
            {
                "group": label,
                "scenarios": len(specs),
                "reference_s": round(ref_s, 4),
                "vectorized_s": round(vect_s, 4),
                "batched_s": round(batch_s, 4),
                "speedup_vs_reference": round(ref_s / batch_s, 2),
                "speedup_vs_vectorized": round(vect_s / batch_s, 2),
            }
        )
        total_ref += ref_s
        total_vect += vect_s
        total_batch += batch_s
        total_n += len(specs)
    rows.append(
        [
            "total",
            total_n,
            round(total_ref * 1e3, 1),
            round(total_vect * 1e3, 1),
            round(total_batch * 1e3, 1),
            round(total_ref / total_batch, 1),
            round(total_vect / total_batch, 2),
        ]
    )
    totals = (total_ref, total_vect, total_batch, total_n)
    return rows, groups_out, totals


def _assert_and_record(workload, grid_desc, groups, record_fastpath, benchmark):
    rows, group_entries, totals = benchmark.pedantic(
        lambda: _compare_groups(groups), rounds=1, iterations=1
    )
    total_ref, total_vect, total_batch, total_n = totals
    assert total_ref / total_vect >= MIN_SPEEDUP
    assert total_ref / total_batch >= MIN_SPEEDUP
    median_gain = statistics.median(
        g["speedup_vs_vectorized"] for g in group_entries
    )
    assert median_gain >= MIN_BATCH_GAIN
    record_fastpath(
        workload,
        total_ref,
        total_vect,
        total_n,
        batched_s=total_batch,
        extra={"grid": grid_desc, "groups": group_entries},
    )
    return rows


def test_bench_fastpath_termination(benchmark, emit, record_fastpath):
    groups = [
        (f"n={n}", termination_grid(ns=[n], seeds=range(SEEDS), noise=0.15))
        for n in (4, 6, 9, 12, 16)
    ]
    rows = _assert_and_record(
        "TERMINATION",
        f"termination_grid(ns=[4,6,9,12,16], seeds=0..{SEEDS - 1}, "
        "noise=0.15)",
        groups,
        record_fastpath,
        benchmark,
    )
    emit(
        format_table(
            HEADERS,
            rows,
            title="FASTPATH-TERM — mega-batched vs vectorized vs reference "
            "backend on the TERMINATION ensemble (identical metrics "
            "asserted first)",
        )
    )


def _hetero_latency_specs(n: int, seeds: int) -> list[ScenarioSpec]:
    """One heterogeneous-latency ensemble: lanes of one same-``n`` batch
    retiring at wildly different rounds.  Two of six lanes carry the
    ablation knobs that stall Algorithm 1 — ``prune_unreachable=False``
    runs to the full ``6n + 20`` budget, a shrunk purge window retires
    earliest — while the rest sweep noise and decide at ``~n + 4``.
    Mask-only batching pays full kernel width until the last straggler
    finishes; lane compaction pays per-round for the live lanes only.
    """
    specs = []
    for s in range(seeds):
        if s % 6 == 5:
            specs.append(
                ScenarioSpec(
                    n=n, k=2, num_groups=2, seed=s, noise=0.35,
                    options=(("prune_unreachable", False),),
                )
            )
        elif s % 6 == 4:
            specs.append(
                ScenarioSpec(
                    n=n, k=2, num_groups=2, seed=s, noise=0.35,
                    options=(("purge_window", max(1, n // 2)),),
                )
            )
        else:
            specs.append(
                ScenarioSpec(
                    n=n, k=2, num_groups=2, seed=s,
                    noise=(0.0, 0.15, 0.3, 0.45)[s % 4],
                )
            )
    return specs


HETERO_HEADERS = [
    "group",
    "scenarios",
    "ref_ms",
    "vect_ms",
    "masked_ms",
    "batch_ms",
    "vs_ref",
    "compaction",
]


def test_bench_fastpath_hetero_latency(benchmark, emit, record_fastpath):
    """HETERO-LAT: the batch scheduler's lane-compaction gain.

    ``compact=False`` reproduces the PR-4 mega-batched backend exactly
    (retired lanes masked, full width to the last straggler), so the
    masked-vs-compacted ratio *is* the compaction gain — measured on
    byte-identical work, asserted equivalent first.
    """
    groups = [
        (f"n={n}", _hetero_latency_specs(n, SEEDS)) for n in (9, 12, 16)
    ]

    def _run():
        rows, entries = [], []
        total_ref = total_vect = total_masked = total_batch = total_n = 0
        for label, specs in groups:
            reference = execute_scenarios(specs, backend="reference")
            vectorized = execute_scenarios(specs, backend="vectorized")
            masked = execute_scenarios(
                specs, backend="batched", compact=False
            )
            compacted = execute_scenarios(specs, backend="batched")
            lines = [canonical_line(r) for r in reference]
            assert lines == [canonical_line(r) for r in vectorized]
            assert lines == [canonical_line(r) for r in masked]
            assert lines == [canonical_line(r) for r in compacted]
            ref_s = _best_of(
                lambda: execute_scenarios(specs, backend="reference")
            )
            vect_s = _best_of(
                lambda: execute_scenarios(specs, backend="vectorized")
            )
            masked_s = _best_of(
                lambda: execute_scenarios(
                    specs, backend="batched", compact=False
                )
            )
            batch_s = _best_of(
                lambda: execute_scenarios(specs, backend="batched")
            )
            rows.append(
                [
                    label,
                    len(specs),
                    round(ref_s * 1e3, 1),
                    round(vect_s * 1e3, 1),
                    round(masked_s * 1e3, 1),
                    round(batch_s * 1e3, 1),
                    round(ref_s / batch_s, 1),
                    round(masked_s / batch_s, 2),
                ]
            )
            entries.append(
                {
                    "group": label,
                    "scenarios": len(specs),
                    "reference_s": round(ref_s, 4),
                    "vectorized_s": round(vect_s, 4),
                    "batched_masked_s": round(masked_s, 4),
                    "batched_s": round(batch_s, 4),
                    "speedup_vs_reference": round(ref_s / batch_s, 2),
                    "speedup_vs_vectorized": round(vect_s / batch_s, 2),
                    "compaction_gain": round(masked_s / batch_s, 2),
                }
            )
            total_ref += ref_s
            total_vect += vect_s
            total_masked += masked_s
            total_batch += batch_s
            total_n += len(specs)
        rows.append(
            [
                "total",
                total_n,
                round(total_ref * 1e3, 1),
                round(total_vect * 1e3, 1),
                round(total_masked * 1e3, 1),
                round(total_batch * 1e3, 1),
                round(total_ref / total_batch, 1),
                round(total_masked / total_batch, 2),
            ]
        )
        totals = (total_ref, total_vect, total_masked, total_batch, total_n)
        return rows, entries, totals

    rows, entries, totals = benchmark.pedantic(_run, rounds=1, iterations=1)
    total_ref, total_vect, total_masked, total_batch, total_n = totals
    median_gain = statistics.median(g["compaction_gain"] for g in entries)
    assert median_gain >= MIN_COMPACTION_GAIN
    assert total_ref / total_batch >= MIN_SPEEDUP
    record_fastpath(
        "HETERO-LAT",
        total_ref,
        total_vect,
        total_n,
        batched_s=total_batch,
        extra={
            "grid": f"heterogeneous-latency mix n=9,12,16, {SEEDS} seeds "
            "(4/6 noise-sweep + 1/6 shrunk-window + 1/6 no-pruning "
            "full-budget stragglers)",
            "batched_masked_s": round(total_masked, 4),
            "compaction_gain": round(total_masked / total_batch, 2),
            "compaction_baseline": "batched with compact=False "
            "(mask-only, the PR-4 kernel behavior)",
            "groups": entries,
        },
    )
    emit(
        format_table(
            HETERO_HEADERS,
            rows,
            title="FASTPATH-HETERO — lane compaction vs mask-only "
            "mega-batching on heterogeneous-latency ensembles "
            "(identical metrics asserted first)",
        )
    )


def test_bench_fastpath_latency_dist(benchmark, emit, record_fastpath):
    scaling = [
        (
            f"n={n}",
            [
                ScenarioSpec(n=n, k=2, num_groups=2, seed=s, noise=0.2)
                for s in range(SEEDS)
            ],
        )
        for n in (6, 9, 12, 16)
    ]
    noise_sens = [
        (
            f"noise={noise}",
            [
                ScenarioSpec(n=9, k=3, num_groups=3, seed=s, noise=noise)
                for s in range(SEEDS)
            ],
        )
        for noise in (0.0, 0.1, 0.3, 0.5)
    ]
    rows = _assert_and_record(
        "LATENCY-DIST",
        f"latency scaling n=6..16 + noise sensitivity n=9, {SEEDS} seeds",
        scaling + noise_sens,
        record_fastpath,
        benchmark,
    )
    emit(
        format_table(
            HEADERS,
            rows,
            title="FASTPATH-LAT — mega-batched vs vectorized vs reference "
            "backend on the LATENCY-DIST ensembles (identical metrics "
            "asserted first)",
        )
    )
