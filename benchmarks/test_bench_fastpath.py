"""FASTPATH: the vectorized execution backend vs the reference simulator.

Times the two backends over the same campaign ensemble workloads the
TERMINATION and LATENCY-DIST experiments run — per-scenario results are
asserted byte-identical (canonical JSON lines) before any speedup is
reported, so the numbers always compare *equivalent* work.  Wall-clocks
land in ``benchmarks/BENCH_FASTPATH.json`` (machine-readable trajectory)
and the per-``n`` breakdown in ``results.txt``.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_table
from repro.engine.executor import execute_scenarios
from repro.engine.scenarios import ScenarioSpec, termination_grid
from repro.engine.store import canonical_line

# Keep the floor conservative vs the measured ~5-9x so a loaded CI box
# cannot flake the suite; BENCH_FASTPATH.json records the real ratios.
MIN_SPEEDUP = 2.5

HEADERS = ["group", "scenarios", "ref_ms", "vect_ms", "speedup"]


def _time_backends(specs):
    """(reference_s, vectorized_s) for one scenario list, equivalence
    asserted first."""
    reference = execute_scenarios(specs, backend="reference")
    vectorized = execute_scenarios(specs, backend="vectorized")
    assert [canonical_line(r) for r in reference] == [
        canonical_line(r) for r in vectorized
    ], "backends disagree — speedup numbers would be meaningless"
    t0 = time.perf_counter()
    execute_scenarios(specs, backend="reference")
    t1 = time.perf_counter()
    execute_scenarios(specs, backend="vectorized")
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1


def _compare_groups(groups):
    rows, total_ref, total_vect, total_n = [], 0.0, 0.0, 0
    for label, specs in groups:
        ref_s, vect_s = _time_backends(specs)
        rows.append(
            [label, len(specs), round(ref_s * 1e3, 1),
             round(vect_s * 1e3, 1), round(ref_s / vect_s, 1)]
        )
        total_ref += ref_s
        total_vect += vect_s
        total_n += len(specs)
    rows.append(
        ["total", total_n, round(total_ref * 1e3, 1),
         round(total_vect * 1e3, 1), round(total_ref / total_vect, 1)]
    )
    return rows, total_ref, total_vect, total_n


def test_bench_fastpath_termination(benchmark, emit, record_fastpath):
    groups = [
        (f"n={n}", termination_grid(ns=[n], seeds=range(5), noise=0.15))
        for n in (6, 9, 12, 16)
    ]
    rows = benchmark.pedantic(
        lambda: _compare_groups(groups)[0], rounds=1, iterations=1
    )
    total_row = rows[-1]
    ref_s, vect_s, total = total_row[2] / 1e3, total_row[3] / 1e3, total_row[1]
    assert ref_s / vect_s >= MIN_SPEEDUP
    record_fastpath(
        "TERMINATION", ref_s, vect_s, total,
        extra={"grid": "termination_grid(ns=[6,9,12,16], seeds=0..4, noise=0.15)"},
    )
    emit(
        format_table(
            HEADERS,
            rows,
            title="FASTPATH-TERM — vectorized backend vs reference on the "
            "TERMINATION ensemble (identical metrics asserted first)",
        )
    )


def test_bench_fastpath_latency_dist(benchmark, emit, record_fastpath):
    scaling = [
        (
            f"n={n}",
            [
                ScenarioSpec(n=n, k=2, num_groups=2, seed=s, noise=0.2)
                for s in range(5)
            ],
        )
        for n in (6, 9, 12, 16)
    ]
    noise_sens = [
        (
            f"noise={noise}",
            [
                ScenarioSpec(n=9, k=3, num_groups=3, seed=s, noise=noise)
                for s in range(5)
            ],
        )
        for noise in (0.0, 0.1, 0.3, 0.5)
    ]
    rows = benchmark.pedantic(
        lambda: _compare_groups(scaling + noise_sens)[0],
        rounds=1,
        iterations=1,
    )
    total_row = rows[-1]
    ref_s, vect_s, total = total_row[2] / 1e3, total_row[3] / 1e3, total_row[1]
    assert ref_s / vect_s >= MIN_SPEEDUP
    record_fastpath(
        "LATENCY-DIST", ref_s, vect_s, total,
        extra={"grid": "latency scaling n=6..16 + noise sensitivity n=9, 5 seeds"},
    )
    emit(
        format_table(
            HEADERS,
            rows,
            title="FASTPATH-LAT — vectorized backend vs reference on the "
            "LATENCY-DIST ensembles (identical metrics asserted first)",
        )
    )
