"""ALG-APPROX: the approximation is correct in ALL runs (Lemmas 3–7,
Theorem 8) — including runs that violate Psrcs entirely — and converges
within n-1 rounds of stabilization."""

from __future__ import annotations

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.adversaries.mobile import MobileOmissionAdversary
from repro.analysis.reporting import format_table
from repro.core.algorithm import make_processes
from repro.core.invariants import make_invariant_hook
from repro.experiments.sweeps import run_algorithm1
from repro.graphs.scc import scc_of
from repro.rounds.simulator import RoundSimulator, SimulationConfig
from repro.skeleton.analysis import stabilization_round


def instrumented_runs():
    """Run lemma-instrumented simulations across predicate regimes."""
    rows = []
    configs = [
        ("Psrcs(1) clique", GroupedSourceAdversary(8, 1, seed=0, noise=0.2,
                                                   topology="clique")),
        ("Psrcs(3) cycles", GroupedSourceAdversary(9, 3, seed=1, noise=0.3)),
        ("no predicate (mobile)", MobileOmissionAdversary(8, 12, seed=2)),
        ("no predicate (heavy)", MobileOmissionAdversary(8, 30, seed=3)),
    ]
    for name, adv in configs:
        procs = make_processes(adv.n)
        run = RoundSimulator(
            procs,
            adv,
            SimulationConfig(max_rounds=5 * adv.n, stop_when_all_decided=False),
            invariant_hooks=[make_invariant_hook()],
        ).run()
        rows.append([name, adv.n, run.num_rounds, "all lemmas hold"])
    return rows


def test_bench_approximation_universality(benchmark, emit):
    rows = benchmark.pedantic(instrumented_runs, rounds=1, iterations=1)
    emit(
        format_table(
            ["regime", "n", "rounds_checked", "Obs1+L3+L5+L6+L7+T8"],
            rows,
            title="ALG-APPROX — approximation lemmas verified every round, "
            "with and without Psrcs (paper: correct in all runs)",
        )
    )


def convergence_rows():
    """Lemma 5/11 convergence: for root-component members, G^r_p equals
    C_p exactly n-1 rounds after stabilization."""
    rows = []
    for n, m in [(6, 2), (9, 3), (12, 2)]:
        adv = GroupedSourceAdversary(n, m, seed=4, noise=0.25, quiet_period=4)
        run = run_algorithm1(adv, track_history=False, max_rounds=8 * n)
        r_st = stabilization_round(run)
        stable = run.stable_skeleton()
        first_decide = min(d.round_no for d in run.decisions.values())
        rows.append([n, m, r_st, first_decide, r_st + n - 1,
                     first_decide <= max(r_st + n - 1, n + 1)])
    return rows


def test_bench_approximation_convergence(benchmark, emit):
    rows = benchmark.pedantic(convergence_rows, rounds=1, iterations=1)
    assert all(row[5] for row in rows)
    emit(
        format_table(
            ["n", "groups", "r_ST", "first_decision", "r_ST+n-1",
             "within Lemma 11 phase-1 bound"],
            rows,
            title="ALG-APPROX — root components decide within n-1 rounds of "
            "stabilization (Lemma 11's first phase)",
        )
    )
