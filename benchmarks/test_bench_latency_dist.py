"""LATENCY-DIST: decision-latency percentiles vs n and vs noise — the
distributional view behind ALG-TERM's per-run bound checks.

The seed ensembles route through the campaign engine and journal to a
JSONL store, so the distribution tables are aggregations of the same
records ``skeleton-agreement campaign report`` prints — and re-running the
benchmark against an existing store only executes missing scenarios.
"""

from __future__ import annotations

from repro.analysis.distributions import (
    LatencyDistribution,
    latency_scaling_table,
    noise_sensitivity_table,
)
from repro.analysis.reporting import format_table


def test_bench_latency_scaling(benchmark, emit, tmp_path):
    rows = benchmark.pedantic(
        latency_scaling_table,
        kwargs=dict(
            ns=[6, 9, 12, 18, 24],
            seeds=range(5),
            store=tmp_path / "latency_scaling.jsonl",
        ),
        rounds=1,
        iterations=1,
    )
    assert all(r.bound_violations == 0 for r in rows)
    medians = [r.p50_last_decide for r in rows]
    assert medians == sorted(medians)  # latency grows with n ...
    # ... roughly linearly (Lemma 11): n quadruples, median < ~6x.
    assert medians[-1] / medians[0] < 6
    emit(
        format_table(
            LatencyDistribution.HEADERS,
            [r.as_row() for r in rows],
            title="LATENCY-DIST — decision-latency percentiles vs n "
            "(5 seeds each; linear growth per Lemma 11's r_ST + 2n - 1)",
        )
    )


def test_bench_noise_sensitivity(benchmark, emit, tmp_path):
    rows = benchmark.pedantic(
        noise_sensitivity_table,
        kwargs=dict(
            noises=[0.0, 0.1, 0.3, 0.5],
            seeds=range(5),
            n=9,
            num_groups=3,
            store=tmp_path / "noise_sensitivity.jsonl",
        ),
        rounds=1,
        iterations=1,
    )
    assert all(r.bound_violations == 0 for r in rows)
    # stabilization can only get later with more noise; distinct values can
    # only collapse (early leakage).
    assert rows[0].p50_stabilization <= rows[-1].p50_stabilization
    assert rows[-1].mean_values <= rows[0].mean_values
    emit(
        format_table(
            LatencyDistribution.HEADERS,
            [r.as_row() for r in rows],
            title="LATENCY-DIST — noise sensitivity (n=9, 3 groups): noise "
            "delays stabilization and leaks minima across groups",
        )
    )
