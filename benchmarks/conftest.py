"""Benchmark-harness helpers.

Every benchmark prints the experiment's result table (the rows the paper
would report) through :func:`emit`, which both echoes to stdout (visible
with ``pytest -s`` / captured in CI logs) and persists to
``benchmarks/results.txt`` so EXPERIMENTS.md can be regenerated from one
file.

Sections in results.txt are keyed by their banner line (``TAG — desc``):
re-emitting a table replaces the previous copy in place, so any pytest
invocation that happens to collect benchmarks — not just the canonical
``pytest benchmarks -q --benchmark-only`` run — leaves exactly one copy
of each table instead of appending duplicates.

:func:`record_fastpath` additionally maintains a *machine-readable* perf
trajectory in ``benchmarks/BENCH_FASTPATH.json`` (per-workload wall-clock
for the reference vs vectorized execution backend, plus host metadata),
so future PRs can track backend speedups without parsing tables.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import re
import statistics

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"
BENCH_FASTPATH_PATH = pathlib.Path(__file__).parent / "BENCH_FASTPATH.json"

# Banner convention for every emitted table.  Bodies may contain blank
# lines (FIG1's panels), so sections are delimited by banner lines, not
# paragraph breaks.
_BANNER = re.compile(r"^[A-Z][A-Za-z0-9()-]* — ")


def _split_sections(text: str) -> list[tuple[str, list[str]]]:
    """Parse results.txt into ordered ``(banner, lines)`` sections."""
    sections: list[tuple[str, list[str]]] = []
    current: list[str] | None = None
    for line in text.splitlines():
        if _BANNER.match(line):
            current = [line]
            sections.append((line, current))
        elif current is not None:
            current.append(line)
    return sections


def _render(sections: list[tuple[str, list[str]]]) -> str:
    return "".join("\n".join(lines).rstrip() + "\n\n" for _, lines in sections)


def pytest_configure(config):
    # Canonical full runs start from a fresh file so renamed/retired
    # benchmarks don't leave stale sections behind.  Only whole-directory
    # sessions truncate: a selective `pytest benchmarks/test_x.py
    # --benchmark-only` must not wipe the other sections (the upsert in
    # emit() keeps them duplicate-free either way).
    if not config.getoption("--benchmark-only", default=False):
        return
    bench_dir = RESULTS_PATH.parent.resolve()
    targets = [
        pathlib.Path(arg.split("::", 1)[0]).resolve()
        for arg in (config.args or ["."])
    ]
    if all(t in (bench_dir, bench_dir.parent) for t in targets):
        RESULTS_PATH.write_text("")


@pytest.fixture
def record_fastpath():
    """Upsert one workload's backend comparison into BENCH_FASTPATH.json.

    Each entry records wall-clock for the reference, vectorized and (when
    measured) mega-batched backends over the same scenario list, plus the
    host it was measured on (per entry, so partial re-runs on another
    machine stay correctly attributed).  File level:

    * ``median_speedup`` — vectorized over reference, median across
      workloads (the historical trajectory number);
    * ``median_speedup_batched`` — batched over reference;
    * ``median_batched_vs_vectorized`` — the *additional* gain of
      mega-batching, median across every recorded per-``n`` group (the
      ``groups`` lists inside the workload entries) so small and large
      ``n`` weigh equally;
    * ``median_compaction_gain`` (schema 3) — the batch scheduler's
      lane-compaction gain over mask-only batching (the PR-4 kernel
      behavior), median across every group that records a
      ``compaction_gain`` (the heterogeneous-latency ensembles);
    * ``median_packing_gain`` (schema 4) — cross-``n`` lane packing
      over the per-``n`` grouping (the PR-5 scheduler behavior), median
      across every group recording a ``packing_gain`` (the mixed-width
      ensembles);
    * ``median_steal_gain`` (schema 4) — work-stealing pool mode over
      the throttled-but-no-steal pool on the same plan, median across
      every group recording a ``steal_gain``.
    """

    def _record(
        workload: str,
        reference_s: float,
        vectorized_s: float,
        scenarios: int,
        batched_s: float | None = None,
        extra: dict | None = None,
    ) -> None:
        import numpy

        data: dict = {}
        if BENCH_FASTPATH_PATH.exists():
            try:
                data = json.loads(BENCH_FASTPATH_PATH.read_text())
            except json.JSONDecodeError:
                data = {}
        if not isinstance(data, dict):
            data = {}
        entry = {
            "scenarios": scenarios,
            "reference_s": round(reference_s, 4),
            "vectorized_s": round(vectorized_s, 4),
            "speedup": round(reference_s / vectorized_s, 2),
            # Host metadata lives *per workload* so a partial re-run on a
            # different machine cannot misattribute the untouched entries.
            "host": {
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": numpy.__version__,
                "cpu_count": os.cpu_count(),
            },
        }
        if batched_s is not None:
            entry["batched_s"] = round(batched_s, 4)
            entry["speedup_batched"] = round(reference_s / batched_s, 2)
            entry["speedup_batched_vs_vectorized"] = round(
                vectorized_s / batched_s, 2
            )
        if extra:
            entry.update(extra)
        workloads = data.setdefault("workloads", {})
        workloads[workload] = entry
        data.pop("host", None)  # legacy file-level host block
        data["schema"] = 5
        data["median_speedup"] = round(
            statistics.median(w["speedup"] for w in workloads.values()), 2
        )
        batched = [
            w["speedup_batched"]
            for w in workloads.values()
            if "speedup_batched" in w
        ]
        if batched:
            data["median_speedup_batched"] = round(
                statistics.median(batched), 2
            )
        group_gains = [
            g["speedup_vs_vectorized"]
            for w in workloads.values()
            for g in w.get("groups", ())
            if "speedup_vs_vectorized" in g
        ]
        if group_gains:
            data["median_batched_vs_vectorized"] = round(
                statistics.median(group_gains), 2
            )
        for gain_key, file_key in (
            ("compaction_gain", "median_compaction_gain"),
            ("packing_gain", "median_packing_gain"),
            ("steal_gain", "median_steal_gain"),
        ):
            gains = [
                g[gain_key]
                for w in workloads.values()
                for g in w.get("groups", ())
                if gain_key in g
            ]
            if gains:
                data[file_key] = round(statistics.median(gains), 2)
        BENCH_FASTPATH_PATH.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )

    return _record


@pytest.fixture
def record_telemetry():
    """Upsert the telemetry-overhead measurement into BENCH_FASTPATH.json
    under a top-level ``"telemetry"`` key.  :func:`record_fastpath`
    rewrites the file but preserves unknown top-level keys, so the two
    recorders coexist."""

    def _record(entry: dict) -> None:
        data: dict = {}
        if BENCH_FASTPATH_PATH.exists():
            try:
                data = json.loads(BENCH_FASTPATH_PATH.read_text())
            except json.JSONDecodeError:
                data = {}
        if not isinstance(data, dict):
            data = {}
        data["telemetry"] = entry
        BENCH_FASTPATH_PATH.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )

    return _record


@pytest.fixture
def record_dist_scale():
    """Upsert the distributed-execution measurement into
    BENCH_FASTPATH.json under a top-level ``"dist_scale"`` key
    (schema 5; coexists with the fastpath/telemetry/contracts recorders
    exactly like :func:`record_telemetry`)."""

    def _record(entry: dict) -> None:
        data: dict = {}
        if BENCH_FASTPATH_PATH.exists():
            try:
                data = json.loads(BENCH_FASTPATH_PATH.read_text())
            except json.JSONDecodeError:
                data = {}
        if not isinstance(data, dict):
            data = {}
        data["dist_scale"] = entry
        # dist_scale is a schema-5 field; stamp the version even when
        # no fastpath workload re-ran in this session.
        data["schema"] = max(5, int(data.get("schema", 0)))
        BENCH_FASTPATH_PATH.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )

    return _record


@pytest.fixture
def record_contracts():
    """Upsert the contracts-overhead measurement into BENCH_FASTPATH.json
    under a top-level ``"contracts"`` key (coexists with the fastpath
    and telemetry recorders exactly like :func:`record_telemetry`)."""

    def _record(entry: dict) -> None:
        data: dict = {}
        if BENCH_FASTPATH_PATH.exists():
            try:
                data = json.loads(BENCH_FASTPATH_PATH.read_text())
            except json.JSONDecodeError:
                data = {}
        if not isinstance(data, dict):
            data = {}
        data["contracts"] = entry
        BENCH_FASTPATH_PATH.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )

    return _record


@pytest.fixture
def emit(capsys):
    """Print an experiment table and upsert it into results.txt."""

    def _emit(text: str) -> None:
        lines = text.splitlines()
        banner = lines[0] if text.strip() else ""
        if not _BANNER.match(banner):
            raise ValueError(
                "emit() tables must open with a 'TAG — description' banner "
                f"line so results.txt stays re-run safe; got {banner!r}"
            )
        interior = [l for l in lines[1:] if _BANNER.match(l)]
        if interior:
            # An interior banner would be split into its own section on
            # the next read, breaking replace-in-place; emit such panels
            # as separate tables instead.
            raise ValueError(
                "emit() table body contains banner-like lines "
                f"{interior!r}; emit each as its own table"
            )
        with capsys.disabled():
            print("\n" + text)
        existing = RESULTS_PATH.read_text() if RESULTS_PATH.exists() else ""
        body = text.rstrip().splitlines()
        kept: list[tuple[str, list[str]]] = []
        replaced = False
        for header, section_lines in _split_sections(existing):
            if header == banner:
                # Replace the first copy; drop stale duplicates left
                # behind by the old append-only emit.
                if not replaced:
                    kept.append((banner, body))
                    replaced = True
            else:
                kept.append((header, section_lines))
        if not replaced:
            kept.append((banner, body))
        RESULTS_PATH.write_text(_render(kept))

    return _emit
