"""Benchmark-harness helpers.

Every benchmark prints the experiment's result table (the rows the paper
would report) through :func:`emit`, which both echoes to stdout (visible
with ``pytest -s`` / captured in CI logs) and appends to
``benchmarks/results.txt`` so EXPERIMENTS.md can be regenerated from one
file.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


def pytest_configure(config):
    # Fresh results file per benchmark session.
    if config.getoption("--benchmark-only", default=False):
        RESULTS_PATH.write_text("")


@pytest.fixture
def emit(capsys):
    """Print and persist an experiment table."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)
        with RESULTS_PATH.open("a") as fh:
            fh.write(text + "\n\n")

    return _emit
