"""MSG-COMPLEX: §V claims worst-case message bit complexity polynomial in
n.  Measure encoded message sizes across n and check the growth exponent."""

from __future__ import annotations

import math

import numpy as np

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.reporting import format_table
from repro.analysis.stats import message_stats, polynomial_bit_bound
from repro.experiments.sweeps import run_algorithm1


def measure():
    rows = []
    sizes = []
    ns = (4, 8, 16, 32, 64)
    for n in ns:
        adv = GroupedSourceAdversary(n, num_groups=2, seed=0, noise=0.1)
        run = run_algorithm1(adv, record_messages=True, max_rounds=3 * n + 10)
        stats = message_stats(run)
        bound = polynomial_bit_bound(n, run.num_rounds)
        rows.append(
            [n, run.num_rounds, stats.max_bits, round(stats.mean_bits),
             bound, stats.max_bits < bound]
        )
        sizes.append(stats.max_bits)
    return rows, list(ns), sizes


def measure_codec():
    """Wire-format sizes under the exact binary codec (LEB128 varints)."""
    from repro.rounds.codec import encoded_bit_size, worst_case_bits

    rows = []
    for n in (4, 8, 16, 32):
        adv = GroupedSourceAdversary(n, num_groups=2, seed=0, noise=0.1)
        run = run_algorithm1(adv, record_messages=True, max_rounds=3 * n + 10)
        observed = max(
            encoded_bit_size(msg)
            for r in range(1, run.num_rounds + 1)
            for msg in run.messages(r).values()
        )
        bound = worst_case_bits(n, run.num_rounds)
        rows.append([n, observed, bound, observed <= bound])
    return rows


def test_bench_message_complexity_codec(benchmark, emit):
    rows = benchmark.pedantic(measure_codec, rounds=1, iterations=1)
    assert all(row[3] for row in rows)
    emit(
        format_table(
            ["n", "max wire bits (binary codec)", "analytic worst case",
             "under"],
            rows,
            title="MSG-COMPLEX — exact binary wire format vs the analytic "
            "O(n^2 (log n + log r)) worst case (§V: polynomial in n)",
        )
    )


def test_bench_message_complexity(benchmark, emit):
    rows, ns, sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert all(row[5] for row in rows), "polynomial ceiling exceeded"
    # Growth-shape check: fit log(max_bits) ~ a*log(n); the approximation
    # graph has O(n^2) labeled edges so a should be comfortably below 3.
    slope = np.polyfit(np.log(ns), np.log(sizes), 1)[0]
    assert 0.5 < slope < 3.0, f"unexpected growth exponent {slope:.2f}"
    emit(
        format_table(
            ["n", "rounds", "max_bits", "mean_bits", "O(n^2 log nr) ceiling",
             "under"],
            rows,
            title=f"MSG-COMPLEX — message size vs n "
            f"(fit exponent ~ n^{slope:.2f}; paper §V: polynomial in n)",
        )
    )
