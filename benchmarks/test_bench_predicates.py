"""PRED-CHECK: cost of checking Psrcs(k) — the conflict-graph α-based
checker vs naive subset enumeration."""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.graphs.generators import gnp_random
from repro.predicates.psrcs import Psrcs


def skeletons(n, count=3, p=0.2):
    return [
        gnp_random(n, p, np.random.default_rng(seed), self_loops=True)
        for seed in range(count)
    ]


def check_all(graphs, k, method):
    return [Psrcs(k, method=method).check_skeleton(g).holds for g in graphs]


def test_bench_conflict_checker_large(benchmark, emit):
    graphs = skeletons(64)
    results = benchmark(check_all, graphs, 4, "conflict")
    assert len(results) == len(graphs)
    # timing table across n for both methods (naive only where feasible)
    rows = []
    for n in (8, 12, 16, 32, 64):
        gs = skeletons(n, count=2)
        t0 = time.perf_counter()
        fast = check_all(gs, 4, "conflict")
        t_fast = time.perf_counter() - t0
        if n <= 16:
            t0 = time.perf_counter()
            naive = check_all(gs, 4, "naive")
            t_naive = time.perf_counter() - t0
            assert naive == fast
        else:
            t_naive = None
        rows.append([n, f"{t_fast * 1e3:.2f}",
                     f"{t_naive * 1e3:.2f}" if t_naive else "(skipped)",
                     fast])
    emit(
        format_table(
            ["n", "conflict_ms", "naive_ms", "holds"],
            rows,
            title="PRED-CHECK — Psrcs(4) checking cost: α(H)-based vs "
            "naive C(n,k+1) enumeration (agree wherever both run)",
        )
    )


def test_bench_naive_checker_small(benchmark):
    graphs = skeletons(10)
    results = benchmark(check_all, graphs, 3, "naive")
    assert len(results) == len(graphs)
