"""FIG1: regenerate Figure 1 (a)–(h) and validate every property the
paper's text states about it."""

from __future__ import annotations

from repro.experiments.figure1 import (
    FIGURE1_N,
    ROOT_COMPONENTS,
    figure1_adversary,
    figure1_panels,
    figure1_run,
    render_figure1,
)
from repro.graphs.condensation import root_components
from repro.predicates.psrcs import Psrcs


def test_bench_figure1_regeneration(benchmark, emit):
    panels = benchmark.pedantic(figure1_panels, rounds=1, iterations=1)
    # Claims from the paper's text:
    stable = panels.stable_skeleton
    assert Psrcs(3).check_skeleton(stable).holds          # caption
    assert set(root_components(stable)) == set(ROOT_COMPONENTS)  # §II
    assert panels.skeleton_round2.is_supergraph_of(stable)
    assert panels.skeleton_round2 != stable               # 1a ⊋ 1b
    assert sorted(panels.approximations) == [1, 2, 3, 4, 5, 6]
    emit("FIG1 — Figure 1 regeneration (panels a–h)\n" + render_figure1())


def test_bench_figure1_algorithm_outcome(benchmark, emit):
    run, _ = benchmark.pedantic(figure1_run, rounds=1, iterations=1)
    assert run.all_decided()
    assert run.decision_values() == {1, 3}
    from repro.analysis.reporting import format_table

    rows = [
        [f"p{p + 1}", run.initial_values[p], run.decisions[p].value,
         run.decisions[p].round_no]
        for p in range(FIGURE1_N)
    ]
    emit(
        format_table(
            ["process", "proposal", "decision", "round"],
            rows,
            title="FIG1 — Algorithm 1 on the Figure 1 system "
            "(2 decision values <= k=3)",
        )
    )
