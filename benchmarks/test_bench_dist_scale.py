"""DIST-SCALE: distributed batch execution vs the single-host backend.

Ships a TERMINATION-style batched ensemble to real ``repro worker``
subprocesses through :func:`repro.engine.remote.execute_remote` and
compares against the in-process batched backend.  Per-scenario journal
lines are asserted byte-identical across serial and every fleet size
before any number is reported, so the timings always compare
*equivalent* work.

Honesty note: CI runs everything on one shared host (often a single
CPU), where "remote" workers compete with the coordinator for the same
cores — wall-clock *speedup* is not measurable there and is **not**
asserted.  What this benchmark records is the distribution overhead
(transport + shard-merge vs in-process dispatch) and per-fleet
throughput; real scaling needs real machines.  The only enforced bound
is a generous overhead ceiling for the single-worker fleet, which
catches pathological serialization/merge regressions without flaking on
loaded boxes.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import time

from repro.analysis.reporting import format_table
from repro.engine.executor import execute_scenarios
from repro.engine.remote import execute_remote
from repro.engine.scenarios import termination_grid
from repro.engine.store import journal_line

# Single-worker remote dispatch repeats the serial work plus transport
# and merge; measured ~1.1-1.3x serial on an idle box.  The ceiling is
# deliberately loose — it exists to catch a pathological regression
# (e.g. per-record reconnects), not to measure.
MAX_SINGLE_WORKER_OVERHEAD = 4.0


def _boot_workers(tmp_path, count):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(pathlib.Path(__file__).resolve().parents[1] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    procs, endpoints = [], []
    for i in range(count):
        port_file = tmp_path / f"w{i}.port"
        procs.append(
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--listen", "127.0.0.1:0",
                    "--port-file", str(port_file),
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
        )
    deadline = time.monotonic() + 30.0
    for i in range(count):
        port_file = tmp_path / f"w{i}.port"
        while not (port_file.exists() and port_file.read_text().strip()):
            if time.monotonic() > deadline:
                raise RuntimeError(f"worker {i} never wrote its port file")
            time.sleep(0.05)
        endpoints.append(port_file.read_text().strip())
    return procs, endpoints


def _stop_workers(procs):
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        try:
            proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate(timeout=10)


def test_bench_dist_scale(benchmark, emit, record_dist_scale, tmp_path):
    specs = termination_grid(ns=[8, 10], seeds=range(24), noise=0.15)

    def _measure():
        t0 = time.perf_counter()
        serial = execute_scenarios(specs, backend="batched")
        serial_s = time.perf_counter() - t0
        serial_lines = [journal_line(r) for r in serial]

        procs, endpoints = _boot_workers(tmp_path, 2)
        fleet_s = {}
        try:
            for count in (1, 2):
                t0 = time.perf_counter()
                results = execute_remote(
                    specs, endpoints[:count], backend="batched"
                )
                fleet_s[count] = time.perf_counter() - t0
                lines = [journal_line(r) for r in results]
                assert lines == serial_lines, (
                    f"remote journal lines diverged with {count} workers"
                )
        finally:
            _stop_workers(procs)
        return serial_s, fleet_s

    serial_s, fleet_s = benchmark.pedantic(_measure, rounds=1, iterations=1)

    overhead_1w = fleet_s[1] / serial_s - 1.0
    assert overhead_1w < MAX_SINGLE_WORKER_OVERHEAD, (
        f"single-worker remote dispatch is {overhead_1w:+.0%} over serial "
        "— transport or shard-merge got pathologically expensive"
    )

    record_dist_scale(
        {
            "workload": "TERMINATION-style batched ensemble "
            f"(ns=[8,10], {len(specs)} scenarios)",
            "scenarios": len(specs),
            "serial_s": round(serial_s, 4),
            "fleet_s": {
                str(count): round(wall, 4)
                for count, wall in fleet_s.items()
            },
            "scenarios_per_s": {
                "serial": round(len(specs) / serial_s, 1),
                **{
                    str(count): round(len(specs) / wall, 1)
                    for count, wall in fleet_s.items()
                },
            },
            "single_worker_overhead": round(overhead_1w, 4),
            "cpu_count": os.cpu_count(),
            "note": "single-host CI: workers share the coordinator's "
            "cores, so these numbers measure transport+merge overhead "
            "and byte-identity, not scaling",
        }
    )
    rows = [
        [
            "serial (in-process)",
            round(serial_s * 1e3, 1),
            round(len(specs) / serial_s, 1),
            "baseline",
        ],
    ]
    for count in sorted(fleet_s):
        wall = fleet_s[count]
        rows.append(
            [
                f"remote x{count}",
                round(wall * 1e3, 1),
                round(len(specs) / wall, 1),
                f"{wall / serial_s - 1.0:+.0%}",
            ]
        )
    emit(
        format_table(
            ["variant", "wall_ms", "scen_per_s", "vs_serial"],
            rows,
            title="DIST-SCALE — remote fleets vs in-process batched "
            f"backend ({len(specs)} scenarios; single-host CI measures "
            "dispatch overhead, not scaling; journals byte-identical)",
        )
    )
