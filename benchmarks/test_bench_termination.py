"""ALG-TERM: Lemma 11 — every process decides by round r_ST + 2n - 1."""

from __future__ import annotations

from repro.adversaries.grouped import GroupedSourceAdversary
from repro.analysis.reporting import format_table
from repro.analysis.stats import decision_stats
from repro.experiments.sweeps import run_algorithm1


def latency_rows():
    rows = []
    for n in (6, 9, 12, 18, 24, 36):
        for seed in (0, 1):
            adv = GroupedSourceAdversary(
                n, num_groups=2, seed=seed, noise=0.25, quiet_period=4
            )
            run = run_algorithm1(adv)
            stats = decision_stats(run)
            rows.append(
                [
                    n,
                    seed,
                    stats.stabilization,
                    stats.first_decision_round,
                    stats.last_decision_round,
                    stats.lemma11_bound,
                    stats.within_bound,
                ]
            )
    return rows


def test_bench_termination(benchmark, emit):
    rows = benchmark.pedantic(latency_rows, rounds=1, iterations=1)
    assert all(row[6] for row in rows), "Lemma 11 bound violated"
    # decisions cannot happen before round n+1 (line 28 guard)
    assert all(row[3] is None or row[3] >= row[0] + 1 for row in rows)
    emit(
        format_table(
            ["n", "seed", "r_ST", "first_decide", "last_decide",
             "bound r_ST+2n-1", "within"],
            rows,
            title="ALG-TERM — decision latency vs Lemma 11 bound "
            "(paper: all decide by r_ST + 2n - 1)",
        )
    )
