"""BASELINE: Algorithm 1 vs FloodMin vs flooding consensus vs LocalMin
under (a) the crash model both baselines assume and (b) the Psrcs(k)
partition model only Algorithm 1 handles."""

from __future__ import annotations

from repro.adversaries.base import RecordedAdversary
from repro.adversaries.crash import CrashAdversary
from repro.adversaries.partition import PartitionAdversary
from repro.analysis.properties import check_agreement_properties
from repro.analysis.reporting import format_table
from repro.baselines.async_kset import make_async_kset_processes
from repro.baselines.flooding import make_flooding_processes
from repro.baselines.floodmin import make_floodmin_processes
from repro.baselines.local_min import make_local_min_processes
from repro.core.algorithm import make_processes
from repro.rounds.simulator import RoundSimulator, SimulationConfig


def run(procs, adversary, max_rounds=80):
    return RoundSimulator(
        procs, adversary, SimulationConfig(max_rounds=max_rounds)
    ).run()


def crash_comparison(n=8, f=3, k=2, seed=0):
    crash_rounds = {i + 1: i + 1 for i in range(f)}
    rows = []
    for name, factory in [
        ("Algorithm 1 (skeleton)", lambda: make_processes(n)),
        ("FloodMin", lambda: make_floodmin_processes(n, f=f, k=k)),
        ("FloodingConsensus", lambda: make_flooding_processes(n, f=f)),
        ("LocalMin(horizon=2)", lambda: make_local_min_processes(n, horizon=2)),
        ("AsyncKSet(f)", lambda: make_async_kset_processes(n, f=f)),
    ]:
        adv = RecordedAdversary(CrashAdversary(n, crash_rounds, seed=seed))
        r = run(factory(), adv)
        rep = check_agreement_properties(r, k)
        rows.append(
            [
                name,
                len(r.decision_values()),
                rep.k_agreement.holds,
                rep.termination.holds,
                max((d.round_no for d in r.decisions.values()), default=None),
            ]
        )
    return rows


def partition_comparison(n=8, k_env=5, k_baseline=3):
    """Environment: Psrcs(k_env) partition run (k_env - 1 loners).  Each
    algorithm is judged against *its own* agreement contract: the classics
    claim <= k_baseline values under <= k_baseline crashes; Algorithm 1
    claims <= k_env under Psrcs(k_env).  The partition forces k_env values,
    so every contract tighter than k_env breaks."""
    rows = []
    for name, factory, contract_k in [
        ("Algorithm 1 (skeleton)", lambda: make_processes(n), k_env),
        (
            "FloodMin",
            lambda: make_floodmin_processes(n, f=k_baseline, k=k_baseline),
            k_baseline,
        ),
        (
            "FloodingConsensus",
            lambda: make_flooding_processes(n, f=k_baseline),
            1,
        ),
        (
            "LocalMin(horizon=4)",
            lambda: make_local_min_processes(n, horizon=4),
            1,
        ),
        (
            "AsyncKSet(f=k-1)",
            lambda: make_async_kset_processes(n, f=k_baseline - 1),
            k_baseline,
        ),
    ]:
        adv = PartitionAdversary(n, k_env)
        r = run(factory(), adv)
        rep = check_agreement_properties(r, contract_k)
        rows.append(
            [
                name,
                contract_k,
                len(r.decision_values()),
                rep.k_agreement.holds,
                rep.termination.holds,
                max((d.round_no for d in r.decisions.values()), default=None),
            ]
        )
    return rows


CRASH_HEADERS = ["algorithm", "distinct_values", "k_agreement", "terminated",
                 "last_decide_round"]
PART_HEADERS = ["algorithm", "contract_k", "distinct_values",
                "meets_contract", "terminated", "last_decide_round"]


def test_bench_baselines_crash_model(benchmark, emit):
    rows = benchmark.pedantic(crash_comparison, rounds=1, iterations=1)
    by_name = {row[0]: row for row in rows}
    # In the crash model everyone terminates and the classics are correct;
    # Algorithm 1 even reaches consensus (1 value) but pays decision latency.
    assert by_name["Algorithm 1 (skeleton)"][1] == 1
    assert by_name["FloodMin"][2]
    assert by_name["FloodingConsensus"][1] == 1
    # FloodMin is much faster (⌊f/k⌋+1 rounds vs ~r_ST+2n-1).
    assert by_name["FloodMin"][4] < by_name["Algorithm 1 (skeleton)"][4]
    emit(
        format_table(
            CRASH_HEADERS,
            rows,
            title="BASELINE(a) — crash-synchronous model (n=8, f=3, k=2): "
            "classics are fast and correct; Algorithm 1 correct but slower",
        )
    )


def test_bench_baselines_partition_model(benchmark, emit):
    rows = benchmark.pedantic(partition_comparison, rounds=1, iterations=1)
    by_name = {row[0]: row for row in rows}
    # Under Psrcs(5) partitioning only Algorithm 1 meets its own bound; the
    # crash-model classics blow through theirs (the forced k_env values) and
    # the asynchronous quorum baseline loses *liveness* (loners starve).
    assert by_name["Algorithm 1 (skeleton)"][3]
    assert not by_name["FloodMin"][3]
    assert not by_name["FloodingConsensus"][3]
    assert not by_name["AsyncKSet(f=k-1)"][4]  # never terminates
    emit(
        format_table(
            PART_HEADERS,
            rows,
            title="BASELINE(b) — Psrcs(5) partition model (n=8): only the "
            "skeleton algorithm meets its agreement contract "
            "(crossover: partitions, which the crash model cannot express)",
        )
    )
