"""BASELINE: Algorithm 1 vs FloodMin vs flooding consensus vs LocalMin
under (a) the crash model both baselines assume and (b) the Psrcs(k)
partition model only Algorithm 1 handles.

Routed through the campaign engine: each comparison is a small campaign —
one :class:`~repro.engine.scenarios.ScenarioSpec` per (algorithm,
adversary) cell — journaled to a JSONL store and read back from it, so the
rows below are literally what ``skeleton-agreement campaign report`` would
print for the same grid.  (The crash adversary is a pure function of
``(seed, round)``, so every algorithm faces the identical graph sequence
without needing a recording wrapper.)
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.engine.campaign import Campaign
from repro.engine.scenarios import ScenarioSpec


def _campaign_rows(named_specs, store_path, extra_cols):
    """Run (resumably) and return one row per named scenario, in order.

    ``backend="auto"``: the Algorithm-1 arm executes on the vectorized
    fast path (identical metrics), the baseline algorithms transparently
    fall back to the reference simulator."""
    campaign = Campaign(
        [spec for _, spec in named_specs], store=store_path, backend="auto"
    )
    campaign.run()
    by_id = {r.scenario_id: r for r in campaign.completed_results()}
    rows = []
    for (name, spec), extra in zip(named_specs, extra_cols):
        res = by_id[spec.scenario_id]
        rows.append(
            [name]
            + list(extra)
            + [
                res.distinct_decisions,
                res.k_agreement_holds,
                res.all_decided,
                res.last_decision_round,
            ]
        )
    return rows


def crash_comparison(n=8, f=3, k=2, seed=0, store_path=None):
    common = dict(n=n, k=k, seed=seed, adversary="crash", max_rounds=80)
    named_specs = [
        (
            "Algorithm 1 (skeleton)",
            ScenarioSpec(algorithm="algorithm1", **common).with_options(f=f),
        ),
        (
            "FloodMin",
            ScenarioSpec(algorithm="floodmin", **common).with_options(f=f),
        ),
        (
            "FloodingConsensus",
            ScenarioSpec(algorithm="flooding", **common).with_options(f=f),
        ),
        (
            "LocalMin(horizon=2)",
            ScenarioSpec(algorithm="local_min", **common).with_options(
                f=f, horizon=2
            ),
        ),
        (
            "AsyncKSet(f)",
            ScenarioSpec(algorithm="async_kset", **common).with_options(f=f),
        ),
    ]
    return _campaign_rows(
        named_specs, store_path, [()] * len(named_specs)
    )


def partition_comparison(n=8, k_env=5, k_baseline=3, store_path=None):
    """Environment: Psrcs(k_env) partition run (k_env - 1 loners).  Each
    algorithm is judged against *its own* agreement contract: the classics
    claim <= k_baseline values under <= k_baseline crashes; Algorithm 1
    claims <= k_env under Psrcs(k_env).  The partition forces k_env values,
    so every contract tighter than k_env breaks."""

    def spec(algorithm, contract_k, **options):
        return ScenarioSpec(
            algorithm=algorithm,
            adversary="partition",
            n=n,
            k=contract_k,
            max_rounds=80,
        ).with_options(k_env=k_env, **options)

    named_specs = [
        ("Algorithm 1 (skeleton)", spec("algorithm1", k_env)),
        ("FloodMin", spec("floodmin", k_baseline, f=k_baseline)),
        ("FloodingConsensus", spec("flooding", 1, f=k_baseline)),
        ("LocalMin(horizon=4)", spec("local_min", 1, horizon=4)),
        ("AsyncKSet(f=k-1)", spec("async_kset", k_baseline, f=k_baseline - 1)),
    ]
    contracts = [(k_env,), (k_baseline,), (1,), (1,), (k_baseline,)]
    return _campaign_rows(named_specs, store_path, contracts)


CRASH_HEADERS = ["algorithm", "distinct_values", "k_agreement", "terminated",
                 "last_decide_round"]
PART_HEADERS = ["algorithm", "contract_k", "distinct_values",
                "meets_contract", "terminated", "last_decide_round"]


def test_bench_baselines_crash_model(benchmark, emit, tmp_path):
    rows = benchmark.pedantic(
        crash_comparison,
        kwargs=dict(store_path=tmp_path / "crash.jsonl"),
        rounds=1,
        iterations=1,
    )
    by_name = {row[0]: row for row in rows}
    # In the crash model everyone terminates and the classics are correct;
    # Algorithm 1 even reaches consensus (1 value) but pays decision latency.
    assert by_name["Algorithm 1 (skeleton)"][1] == 1
    assert by_name["FloodMin"][2]
    assert by_name["FloodingConsensus"][1] == 1
    # FloodMin is much faster (⌊f/k⌋+1 rounds vs ~r_ST+2n-1).
    assert by_name["FloodMin"][4] < by_name["Algorithm 1 (skeleton)"][4]
    emit(
        format_table(
            CRASH_HEADERS,
            rows,
            title="BASELINE(a) — crash-synchronous model (n=8, f=3, k=2): "
            "classics are fast and correct; Algorithm 1 correct but slower",
        )
    )


def test_bench_baselines_partition_model(benchmark, emit, tmp_path):
    rows = benchmark.pedantic(
        partition_comparison,
        kwargs=dict(store_path=tmp_path / "partition.jsonl"),
        rounds=1,
        iterations=1,
    )
    by_name = {row[0]: row for row in rows}
    # Under Psrcs(5) partitioning only Algorithm 1 meets its own bound; the
    # crash-model classics blow through theirs (the forced k_env values) and
    # the asynchronous quorum baseline loses *liveness* (loners starve).
    assert by_name["Algorithm 1 (skeleton)"][3]
    assert not by_name["FloodMin"][3]
    assert not by_name["FloodingConsensus"][3]
    assert not by_name["AsyncKSet(f=k-1)"][4]  # never terminates
    emit(
        format_table(
            PART_HEADERS,
            rows,
            title="BASELINE(b) — Psrcs(5) partition model (n=8): only the "
            "skeleton algorithm meets its agreement contract "
            "(crossover: partitions, which the crash model cannot express)",
        )
    )
