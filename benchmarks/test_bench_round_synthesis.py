"""ROUND-SYNTH: Psrcs(k) emerging from wire latencies — the timeout sweep
over the partially synchronous substrate (§I's Dwork-style abstraction)."""

from __future__ import annotations

from repro.analysis.properties import check_agreement_properties
from repro.analysis.reporting import format_table
from repro.experiments.sweeps import run_algorithm1
from repro.graphs.condensation import count_root_components
from repro.predicates.psrcs import Psrcs
from repro.transport.network import Network, PartiallySynchronousLatency
from repro.transport.round_layer import (
    RoundSynthesizer,
    SynthesizedAdversary,
    grouped_core_links,
)

GROUPS = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
N = 9
K = 3


def timeout_sweep():
    """For each round timeout, run the full stack and record what predicate
    level the wire realizes and what Algorithm 1 achieves on it."""
    rows = []
    for timeout in (0.05, 1.0, 2.0, 10.0, 60.0):
        model = PartiallySynchronousLatency(
            grouped_core_links(GROUPS),
            fast_min=0.1,
            fast_max=0.9,
            slow_prob=0.6,
            slow_min=5.0,
            slow_max=50.0,
            seed=4,
        )
        net = Network(N, model)
        synth = RoundSynthesizer(net, timeout=timeout)
        # Empirical stable skeleton over a 40-round prefix.
        inter = synth.synthesize_round(1).with_self_loops()
        for r in range(2, 41):
            inter = inter.intersection(synth.synthesize_round(r).with_self_loops())
        tightest = Psrcs(1).tightest_k(inter)
        roots = count_root_components(inter)
        # And the end-to-end run.
        model2 = PartiallySynchronousLatency(
            grouped_core_links(GROUPS), fast_min=0.1, fast_max=0.9,
            slow_prob=0.6, slow_min=5.0, slow_max=50.0, seed=4,
        )
        if timeout >= model2.fast_max:
            adv = SynthesizedAdversary(
                RoundSynthesizer(Network(N, model2), timeout=timeout)
            )
            run = run_algorithm1(adv, max_rounds=100)
            report = check_agreement_properties(run, max(tightest, 1))
            decided = report.termination.holds
            values = report.num_decision_values
        else:
            decided, values = None, None
        rows.append([timeout, inter.number_of_edges(), roots, tightest,
                     values, decided])
    return rows


def test_bench_round_synthesis(benchmark, emit):
    rows = benchmark.pedantic(timeout_sweep, rounds=1, iterations=1)
    by_timeout = {row[0]: row for row in rows}
    # timeout below the fast band: everyone isolated -> n roots.
    assert by_timeout[0.05][2] == N
    # timeout inside [fast_max, slow_min): exactly the core -> k roots,
    # tightest Psrcs level == k.
    assert by_timeout[1.0][2] == K
    assert by_timeout[1.0][3] == K
    # timeout above slow_max: everything timely -> 1 root (consensus-able).
    assert by_timeout[60.0][2] == 1
    emit(
        format_table(
            ["timeout", "stable_edges(40r)", "root_components",
             "tightest_Psrcs_k", "decided_values", "terminated"],
            rows,
            title="ROUND-SYNTH — timeout sweep over a partially synchronous "
            "wire (fast core = grouped sources): Psrcs(k) appears exactly "
            "when the timeout separates the fast band from the slow band",
        )
    )
